//! Shredding XML into storage tables, and the data-backed operations the
//! renderer needs: exact `typeDistance` and the Dewey-prefix closest join.
//!
//! The paper's architecture (Fig. 8) shreds documents into BerkeleyDB
//! tables; ours land in `xmorph-pagestore` trees:
//!
//! * **`nodes`** — Dewey key → (type id, direct text). The paper's
//!   `Nodes` table.
//! * **`typeseq`** — (type id, Dewey) key → direct text. The paper's
//!   `TypeToSequence`/`GroupedSequence` tables folded into one: a scan
//!   with a `(type, prefix)` key prefix *is* the grouped sequence that
//!   feeds a closest join, and carrying the text in the value lets the
//!   renderer stream output from a single scan.
//! * **`meta`** — the serialized adorned shape (`AdornedShapes` table)
//!   and the column generation counter.
//!
//! Shredding is streaming: one pass over the SAX-style event stream with
//! O(depth) memory, exactly like the paper's Xerces-based shredder. By
//! default the collected entries are key-sorted and **bulk-loaded**
//! bottom-up ([`xmorph_pagestore::store::Tree::bulk_load`]) instead of
//! inserted one root-to-leaf descent at a time.
//!
//! On the read side the hot path never descends the B+tree per probe:
//! the first touch of a type yields its [`TypeColumn`] — a flat sorted
//! array of Dewey component words plus an offset-indexed text arena —
//! and every closest join, co-occurrence scan, and type scan runs on
//! that column via binary-searched prefix ranges. On a file-backed store
//! the columns built at shred time are also **persisted** as checksummed
//! page-aligned segments (the `colseg` on-disk format), so a cold
//! reopen memory-maps them read-only instead of re-decoding the
//! `typeseq` tree — the column cache is then not heap-bounded. Stale or
//! corrupt segments degrade to the lazy rebuild, never to an error. The
//! original B+tree-backed operations survive as `*_btree` reference
//! implementations for cross-checking and ablation.

use crate::error::{MorphError, MorphResult, StoreOpExt};
use crate::model::shape::{AdornedShape, ShapeBuilder};
use crate::model::types::{TypeId, TypeTable};
use crate::semantics::eval::DistOracle;
use crate::store::colseg;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering as Cmp;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use xmorph_pagestore::{SegmentData, Store, StoreError, Tree, DEFAULT_FILL};
use xmorph_xml::dewey::{decode_components_into, Dewey};
use xmorph_xml::reader::{EventSource, XmlEvent, XmlReader, XmlStreamReader};

/// Multiply-xor hasher for the small integer keys on the probe hot
/// path. Every `closest_group` probe hashes into the distance cache
/// and the column cache; SipHash's per-call setup dominates at that
/// grain, while TypeId keys need no DoS hardening.
#[derive(Default, Clone, Copy)]
pub(in crate::store) struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517cc1b727220a95);
    }
}

pub(in crate::store) type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Shred-time knobs, built fluently:
///
/// ```
/// use xmorph_core::ShredOptions;
///
/// let opts = ShredOptions::builder()
///     .bulk_load(false)
///     .persist_columns(false);
/// # let _ = opts;
/// ```
///
/// The old public-field struct (and its positional-flag ancestors) is
/// gone; fields are private so knobs can keep accreting behind the
/// builder without breaking callers.
#[derive(Debug, Clone)]
pub struct ShredOptions {
    bulk_load: bool,
    fill_factor: f64,
    eager_columns: bool,
    persist_columns: bool,
    memory_budget: Option<usize>,
}

impl Default for ShredOptions {
    fn default() -> Self {
        ShredOptions {
            bulk_load: true,
            fill_factor: DEFAULT_FILL,
            eager_columns: false,
            persist_columns: true,
            memory_budget: None,
        }
    }
}

impl ShredOptions {
    /// Start from the defaults (bulk-loaded trees, lazy columns,
    /// columns persisted on file-backed stores).
    pub fn builder() -> ShredOptions {
        ShredOptions::default()
    }

    /// Sort the `nodes`/`typeseq` entries once and build both trees with
    /// the B+tree bulk loader (bottom-up leaf packing) instead of one
    /// root-to-leaf insert per entry. `false` keeps the original
    /// incremental path — the before/after baseline of the `fig_joins`
    /// benchmark. Default: `true`.
    pub fn bulk_load(mut self, on: bool) -> Self {
        self.bulk_load = on;
        self
    }

    /// Leaf/interior fill factor handed to the bulk loader (clamped to
    /// `[0.5, 1.0]`). Default: [`xmorph_pagestore::DEFAULT_FILL`].
    pub fn fill_factor(mut self, fill: f64) -> Self {
        self.fill_factor = fill;
        self
    }

    /// Decode every type's [`TypeColumn`] eagerly right after shredding
    /// instead of lazily on first touch. Default: `false`.
    pub fn eager_columns(mut self, on: bool) -> Self {
        self.eager_columns = on;
        self
    }

    /// Persist the built columns as on-disk segments so a later
    /// [`ShreddedDoc::open`] maps them instead of re-decoding `typeseq`.
    /// Only effective on file-backed stores (an in-memory store has no
    /// cold reopen to accelerate). Default: `true`.
    pub fn persist_columns(mut self, on: bool) -> Self {
        self.persist_columns = on;
        self
    }

    /// Cap, in bytes, on the shredder's working memory (bulk path
    /// only). With a budget set, entry pairs accumulate in fixed-size
    /// run buffers that are sorted and spilled to temporary store
    /// segments as they fill, then k-way merged straight into the
    /// B+tree bulk loader — so documents far larger than memory shred
    /// without ever materializing the sorted entry set. `None` (the
    /// default) keeps the all-in-memory sort, which is fastest when the
    /// document comfortably fits.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Which columns [`ShreddedDoc::open_with`] touches up front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Preload {
    /// Load nothing; every column loads on first touch.
    #[default]
    None,
    /// Load every type's column before `open_with` returns.
    All,
    /// Load the types named by these dotted paths (e.g.
    /// `"data.book.title"`); unknown paths are ignored.
    Paths(Vec<String>),
}

/// Open-time knobs for an already-shredded store, built fluently:
///
/// ```
/// use xmorph_core::{OpenOptions, Preload};
///
/// let opts = OpenOptions::builder()
///     .mmap(false)
///     .column_budget(64 << 20)
///     .preload(Preload::All);
/// # let _ = opts;
/// ```
#[derive(Debug, Clone)]
pub struct OpenOptions {
    persisted_columns: bool,
    mmap: bool,
    column_budget: Option<usize>,
    preload: Preload,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            persisted_columns: true,
            mmap: true,
            column_budget: None,
            preload: Preload::None,
        }
    }
}

impl OpenOptions {
    /// Start from the defaults (persisted columns used, mmap preferred,
    /// no budget, no preload).
    pub fn builder() -> OpenOptions {
        OpenOptions::default()
    }

    /// Read persisted column segments when present and valid; `false`
    /// always rebuilds columns from the `typeseq` tree. Default: `true`.
    pub fn persisted_columns(mut self, on: bool) -> Self {
        self.persisted_columns = on;
        self
    }

    /// Prefer memory-mapping persisted segments over copying them to
    /// the heap. Mapped columns don't count against the heap; eviction
    /// unmaps them. Default: `true`.
    pub fn mmap(mut self, on: bool) -> Self {
        self.mmap = on;
        self
    }

    /// Approximate cap, in bytes, on cached column memory (heap +
    /// mapped). When an insert pushes the cache past the cap, other
    /// columns are evicted until it fits (the newly touched column
    /// always stays). Default: unbounded.
    pub fn column_budget(mut self, bytes: usize) -> Self {
        self.column_budget = Some(bytes);
        self
    }

    /// Columns to load before `open_with` returns. Default:
    /// [`Preload::None`].
    pub fn preload(mut self, preload: Preload) -> Self {
        self.preload = preload;
        self
    }
}

/// The two places a cached column's bytes can live, reported by
/// [`ShreddedDoc::column_bytes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnBytes {
    /// Bytes on the heap (decoded columns and copy-decoded segments).
    pub heap: usize,
    /// Bytes memory-mapped from persisted segments (page cache, not
    /// heap; reclaimable by the OS under pressure).
    pub mapped: usize,
}

impl ColumnBytes {
    /// Heap and mapped together — the budget's unit of account.
    pub fn total(&self) -> usize {
        self.heap + self.mapped
    }
}

/// A clustered copy of one type's `typeseq` range: every instance's
/// Dewey number as a row of `u32` component words in one flat sorted
/// array (fixed row width — all instances of a type share one depth),
/// plus the direct texts concatenated in an offset-indexed arena. A
/// `(type, prefix)` probe becomes two binary searches over the rows
/// ([`TypeColumn::prefix_range`]); a type scan becomes a slice walk.
/// Columns are immutable once built and shared behind an `Arc`, so
/// concurrent renders hit one copy.
///
/// The rows live either on the heap (decoded from the B+tree, or
/// copy-decoded from a persisted segment) or in a read-only memory map
/// of the segment itself — the accessors don't care which.
pub struct TypeColumn {
    /// Components per row.
    width: usize,
    backing: Backing,
}

enum Backing {
    Heap {
        /// Row-major component words, `len() * width` of them, sorted.
        comps: Vec<u32>,
        /// Concatenated direct texts.
        texts: String,
        /// `len() + 1` byte offsets into `texts`.
        offsets: Vec<u32>,
    },
    /// A validated v1 column segment, borrowed in place. Constructed
    /// only when the platform lets the payload be reinterpreted
    /// directly (little-endian, 4-byte-aligned mapping); see
    /// [`TypeColumn::from_segment`].
    Mapped {
        seg: SegmentData,
        layout: colseg::SegmentLayout,
    },
    /// A validated v2 (delta/varint-compressed) segment served from a
    /// read-only mapping: the component and offset arrays were decoded
    /// to the heap at load time (varints cannot be indexed in place),
    /// while the text arena — typically the bulk of the bytes — is
    /// still served zero-copy out of the mapping. `mapped_bytes`
    /// reports the compressed segment length: the cold-open I/O
    /// actually paid.
    Compressed {
        seg: SegmentData,
        comps: Vec<u32>,
        offsets: Vec<u32>,
        /// UTF-8-validated arena range within `seg`.
        texts: Range<usize>,
    },
}

/// Three-way compare of a row's leading components against a clamped
/// prefix (`pre.len()` ≤ row length). Chunked 8 components at a time:
/// each chunk first runs a branch-free XOR-OR inequality test — eight
/// independent word ops the compiler can keep in flight (or vectorize)
/// — and only a chunk that proves unequal pays for per-word ordering.
/// Dewey rows in one closest-join group share long prefixes, so the
/// cheap path is the common one on wide columns; narrow rows fall
/// through to the scalar tail immediately.
fn cmp_prefix(row: &[u32], pre: &[u32]) -> Cmp {
    debug_assert!(row.len() >= pre.len());
    let n = pre.len();
    let mut i = 0;
    while i + 8 <= n {
        let a = &row[i..i + 8];
        let b = &pre[i..i + 8];
        let ne = (a[0] ^ b[0])
            | (a[1] ^ b[1])
            | (a[2] ^ b[2])
            | (a[3] ^ b[3])
            | (a[4] ^ b[4])
            | (a[5] ^ b[5])
            | (a[6] ^ b[6])
            | (a[7] ^ b[7]);
        if ne != 0 {
            for k in 0..8 {
                match a[k].cmp(&b[k]) {
                    Cmp::Equal => {}
                    other => return other,
                }
            }
        }
        i += 8;
    }
    while i < n {
        match row[i].cmp(&pre[i]) {
            Cmp::Equal => i += 1,
            other => return other,
        }
    }
    Cmp::Equal
}

/// First index in `[lo, hi)` of the row-major `comps` (width `w`)
/// where the monotone `pred` turns false, by plain binary search.
fn binary_partition(
    comps: &[u32],
    w: usize,
    mut lo: usize,
    mut hi: usize,
    pred: impl Fn(&[u32]) -> bool,
) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&comps[mid * w..(mid + 1) * w]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index in `[from, n)` where the monotone `pred` turns false,
/// found by galloping: exponential probes from `from` bracket the flip
/// point, then a binary search inside the bracket pins it. Cost is
/// O(log d) in the distance `d` actually advanced — so a sweep that
/// calls this repeatedly with an increasing `from` does O(n + m) total
/// work over m calls, instead of the O(m log n) of restarting a binary
/// search each time.
fn gallop_partition(
    comps: &[u32],
    w: usize,
    from: usize,
    n: usize,
    pred: impl Fn(&[u32]) -> bool,
) -> usize {
    let row = |i: usize| &comps[i * w..(i + 1) * w];
    if from >= n || !pred(row(from)) {
        return from.min(n);
    }
    // Row `from` still satisfies `pred`: double the step until a probe
    // fails (or the end of the column brackets the flip point).
    let mut last = from;
    let mut step = 1usize;
    let hi = loop {
        let probe = from + step;
        if probe >= n {
            break n;
        }
        if pred(row(probe)) {
            last = probe;
            step <<= 1;
        } else {
            break probe;
        }
    };
    binary_partition(comps, w, last + 1, hi, pred)
}

impl TypeColumn {
    /// Assemble a heap column from already-sorted parts — the mutation
    /// path's sorted-run merge ([`crate::store::mutate`]) lands here.
    pub(in crate::store) fn from_parts(
        width: usize,
        comps: Vec<u32>,
        offsets: Vec<u32>,
        texts: String,
    ) -> TypeColumn {
        debug_assert_eq!(
            offsets.len(),
            comps.len().checked_div(width).unwrap_or(0) + 1
        );
        TypeColumn {
            width,
            backing: Backing::Heap {
                comps,
                texts,
                offsets,
            },
        }
    }

    /// Wrap a validated, parsed segment. A v1 segment on a little-endian
    /// platform serving a 4-byte-aligned mapping borrows the payload in
    /// place (zero copy); a v2 segment on a mapping keeps its decoded
    /// arrays but serves texts zero-copy; anything else — heap-read
    /// segments, exotic alignment, big-endian — lands fully on the
    /// heap, which still skips the B+tree walk and per-key Dewey decode
    /// of a full rebuild.
    fn from_segment(seg: SegmentData, parsed: colseg::ParsedSegment) -> TypeColumn {
        match parsed {
            colseg::ParsedSegment::V1(layout) => {
                let width = layout.width;
                let aligned = (seg.as_ptr() as usize + layout.comps.start).is_multiple_of(4);
                if cfg!(target_endian = "little") && seg.is_mapped() && aligned {
                    return TypeColumn {
                        width,
                        backing: Backing::Mapped { seg, layout },
                    };
                }
                let le_words = |range: Range<usize>| {
                    seg[range]
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect::<Vec<u32>>()
                };
                let comps = le_words(layout.comps.clone());
                let offsets = le_words(layout.offsets.clone());
                // UTF-8 was validated by `colseg::parse`.
                let texts = std::str::from_utf8(&seg[layout.texts.clone()])
                    .expect("validated arena")
                    .to_string();
                TypeColumn {
                    width,
                    backing: Backing::Heap {
                        comps,
                        texts,
                        offsets,
                    },
                }
            }
            colseg::ParsedSegment::V2(dec) => {
                let width = dec.width;
                if seg.is_mapped() {
                    return TypeColumn {
                        width,
                        backing: Backing::Compressed {
                            comps: dec.comps,
                            offsets: dec.offsets,
                            texts: dec.texts,
                            seg,
                        },
                    };
                }
                let texts = std::str::from_utf8(&seg[dec.texts.clone()])
                    .expect("validated arena")
                    .to_string();
                TypeColumn {
                    width,
                    backing: Backing::Heap {
                        comps: dec.comps,
                        texts,
                        offsets: dec.offsets,
                    },
                }
            }
        }
    }

    fn comps(&self) -> &[u32] {
        match &self.backing {
            Backing::Heap { comps, .. } => comps,
            Backing::Compressed { comps, .. } => comps,
            Backing::Mapped { seg, layout } => {
                let bytes = &seg[layout.comps.clone()];
                // SAFETY: constructed only on little-endian with the
                // payload 4-byte aligned (checked in `from_segment`);
                // the mapping is immutable and outlives `self`.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
            }
        }
    }

    fn offsets(&self) -> &[u32] {
        match &self.backing {
            Backing::Heap { offsets, .. } => offsets,
            Backing::Compressed { offsets, .. } => offsets,
            Backing::Mapped { seg, layout } => {
                let bytes = &seg[layout.offsets.clone()];
                // SAFETY: as in `comps` — alignment holds because the
                // comps section is a multiple of 4 bytes long.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
            }
        }
    }

    fn texts(&self) -> &str {
        match &self.backing {
            Backing::Heap { texts, .. } => texts,
            Backing::Mapped { seg, layout } => {
                // SAFETY: `colseg::parse` validated the arena (and every
                // offset boundary) as UTF-8 before this column existed.
                unsafe { std::str::from_utf8_unchecked(&seg[layout.texts.clone()]) }
            }
            Backing::Compressed { seg, texts, .. } => {
                // SAFETY: as in `Mapped` — the v2 parse validated the
                // arena and every offset boundary as UTF-8.
                unsafe { std::str::from_utf8_unchecked(&seg[texts.clone()]) }
            }
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.offsets().len() - 1
    }

    /// True when the type has no instances.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dewey length (in components) shared by every row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// True when the column is served out of a read-only memory map of
    /// the persisted segment rather than rebuilt from the B+tree: a v1
    /// segment borrowed in place, or a v2 segment whose text arena the
    /// mapping still serves zero-copy.
    pub fn is_mapped(&self) -> bool {
        matches!(
            self.backing,
            Backing::Mapped { .. } | Backing::Compressed { .. }
        )
    }

    /// Components of instance `i`.
    pub fn components(&self, i: usize) -> &[u32] {
        &self.comps()[i * self.width..(i + 1) * self.width]
    }

    /// Direct text of instance `i`, borrowed from the arena.
    pub fn text(&self, i: usize) -> &str {
        let offsets = self.offsets();
        &self.texts()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Dewey number of instance `i` (materialized from the row).
    pub fn dewey(&self, i: usize) -> Dewey {
        Dewey::from_slice(self.components(i))
    }

    /// Row range of instances whose components start with `prefix` —
    /// the closest-join group of a parent whose join prefix this is.
    /// One binary search for the lower bound, one short gallop for the
    /// upper (groups are small, so galloping beats a second full binary
    /// search); no allocation.
    pub fn prefix_range(&self, prefix: &[u32]) -> Range<usize> {
        self.prefix_range_from(0, prefix)
    }

    /// [`TypeColumn::prefix_range`] restricted to rows at or after
    /// `from` — the monotone-cursor variant. A fresh probe (`from == 0`)
    /// binary-searches, since the group can be anywhere; a cursor or
    /// batch sweep (`from > 0`) gallops forward from `from`, whose cost
    /// is logarithmic in the distance actually advanced, so a full
    /// sweep over m parents is O(n + m) instead of O(m log n).
    fn prefix_range_from(&self, from: usize, prefix: &[u32]) -> Range<usize> {
        let p = prefix.len().min(self.width);
        let pre = &prefix[..p];
        let comps = self.comps();
        let w = self.width;
        let n = self.len();
        let below = |row: &[u32]| cmp_prefix(row, pre) == Cmp::Less;
        let lo = if from == 0 {
            binary_partition(comps, w, 0, n, below)
        } else {
            gallop_partition(comps, w, from, n, below)
        };
        let hi = gallop_partition(comps, w, lo, n, |row| cmp_prefix(row, pre) != Cmp::Greater);
        lo..hi
    }

    /// Row ranges matching each prefix of a **document-ordered** batch
    /// (prefixes non-decreasing, e.g. the join prefixes of a sorted
    /// parent column): one forward pass over the column, galloping each
    /// group's bounds from the end of the previous group instead of
    /// restarting at row 0, with runs of equal prefixes served from the
    /// last group — the [`ClosestCursor`] contract, vectorized. The
    /// result is elementwise equal to calling
    /// [`TypeColumn::prefix_range`] per prefix.
    pub fn prefix_ranges<'p>(
        &self,
        prefixes: impl IntoIterator<Item = &'p [u32]>,
    ) -> Vec<Range<usize>> {
        let comps = self.comps();
        let w = self.width;
        let n = self.len();
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut prev: Option<&[u32]> = None;
        let mut group = 0..0;
        for prefix in prefixes {
            let p = prefix.len().min(w);
            let pre = &prefix[..p];
            if prev == Some(pre) {
                out.push(group.clone());
                continue;
            }
            debug_assert!(
                prev.is_none_or(|q| q <= pre),
                "batch prefixes must be document-ordered"
            );
            let below = |row: &[u32]| cmp_prefix(row, pre) == Cmp::Less;
            let lo = gallop_partition(comps, w, pos, n, below);
            let hi = gallop_partition(comps, w, lo, n, |row| cmp_prefix(row, pre) != Cmp::Greater);
            pos = hi;
            group = lo..hi;
            prev = Some(pre);
            out.push(group.clone());
        }
        out
    }

    /// Heap bytes held by the column (zero for a v1 mapped column; the
    /// decoded component and offset arrays for a compressed one).
    pub fn heap_bytes(&self) -> usize {
        match &self.backing {
            Backing::Heap {
                comps,
                texts,
                offsets,
            } => comps.capacity() * 4 + texts.capacity() + offsets.capacity() * 4,
            Backing::Mapped { .. } => 0,
            Backing::Compressed { comps, offsets, .. } => {
                comps.capacity() * 4 + offsets.capacity() * 4
            }
        }
    }

    /// Bytes served from a memory-mapped segment (zero for a heap
    /// column). These live in the page cache, not the heap — for a v2
    /// segment this is the compressed length, i.e. the bytes a cold
    /// open actually reads.
    pub fn mapped_bytes(&self) -> usize {
        match &self.backing {
            Backing::Heap { .. } => 0,
            Backing::Mapped { seg, .. } | Backing::Compressed { seg, .. } => seg.len(),
        }
    }

    /// Serialize into column-segment bytes (the v2 compressed `colseg`
    /// on-disk format — the only format the write path emits).
    pub(in crate::store) fn encode_segment(&self, generation: u64) -> Vec<u8> {
        colseg::encode_v2(
            self.width,
            self.comps(),
            self.offsets(),
            self.texts(),
            generation,
        )
    }
}

impl std::fmt::Debug for TypeColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeColumn")
            .field("width", &self.width)
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl PartialEq for TypeColumn {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality — backing (heap vs mapped) is irrelevant.
        self.width == other.width
            && self.comps() == other.comps()
            && self.offsets() == other.offsets()
            && self.texts() == other.texts()
    }
}

impl Eq for TypeColumn {}

/// A shredded XML document: storage tables plus the in-memory adorned
/// shape (which is tiny relative to the data, as the paper notes —
/// "prior to rendering, only the adorned shapes ... are needed").
pub struct ShreddedDoc {
    pub(in crate::store) store: Store,
    pub(in crate::store) nodes: Tree,
    pub(in crate::store) typeseq: Tree,
    pub(in crate::store) meta: Tree,
    pub(in crate::store) shape: AdornedShape,
    /// Monotone per-store shred counter; persisted column segments
    /// carry the generation they were built from, so segments from an
    /// earlier shred self-invalidate. Mutations refine this with
    /// *per-type* generations (`tygens`): a mutated type's expected
    /// generation moves past `generation` while the other types keep
    /// validating against it, so one update never stales ~500 segments.
    generation: u64,
    /// Per-type generation overrides, persisted under `meta["tygen."]`
    /// keys. Absent type → the store-wide `generation` applies.
    pub(in crate::store) tygens: Mutex<HashMap<TypeId, u64>>,
    /// Next generation value a mutation hands out (always above both
    /// `generation` and every current tygen). Only mutation methods
    /// (`&mut self`) advance it.
    pub(in crate::store) next_gen: u64,
    /// Open-time knobs (see [`OpenOptions`]).
    use_persisted: bool,
    prefer_mmap: bool,
    /// Column-cache budget in bytes; `usize::MAX` means unbounded.
    /// Atomic (not a plain field) so the engine facade can retune the
    /// budget per query on a document shared across server sessions
    /// ([`ShreddedDoc::set_column_budget`]).
    column_budget: AtomicUsize,
    /// Exact typeDistance cache (the co-occurrence scan is linear; each
    /// pair is computed at most once per document). Structural
    /// mutations clear it.
    pub(in crate::store) dist_cache: Mutex<HashMap<(TypeId, TypeId), Option<usize>, FxBuild>>,
    /// Cached per-type columns — the columnar read path. Reads share
    /// the lock; a miss takes the write lock only to publish the
    /// freshly loaded column.
    pub(in crate::store) columns: RwLock<HashMap<TypeId, Arc<TypeColumn>, FxBuild>>,
    /// Closest-join plan cache: per `(parent type, child type)` pair,
    /// the precomputed join prefix length `L` (§VII) and the child
    /// column, so a hot probe pays a single map lookup instead of a
    /// distance lookup plus a column lookup. Cleared whenever a cached
    /// column is evicted or replaced.
    #[allow(clippy::type_complexity)]
    pub(in crate::store) plan_cache:
        RwLock<HashMap<(TypeId, TypeId), Option<(usize, Arc<TypeColumn>)>, FxBuild>>,
    /// Persisted segments that failed validation and fell back to a
    /// rebuild, as `"segment: reason"` lines.
    fallbacks: Mutex<Vec<String>>,
    /// Full column decodes from `typeseq` (cache misses without a
    /// usable persisted segment) — the "re-decode" cost the per-type
    /// maintenance keeps low.
    pub(in crate::store) rebuilds: AtomicU64,
    /// Cached columns updated by sorted-run merge — counted when the
    /// deferred merge actually runs (on the first read after a burst of
    /// mutations), not per mutation.
    pub(in crate::store) merged_columns: AtomicU64,
    /// Mutation deltas awaiting their deferred merge, folded per type.
    /// [`ShreddedDoc::column`] settles the entry for a type before
    /// serving it; mutations are cheap because they only fold here.
    pub(in crate::store) pending_deltas: Mutex<HashMap<TypeId, super::mutate::TypeDelta>>,
    /// Columns invalidated outright (not cached at mutation time).
    pub(in crate::store) invalidated_columns: u64,
    /// Types whose cached column is newer than any persisted segment;
    /// [`ShreddedDoc::persist_dirty_columns`] re-persists them.
    pub(in crate::store) dirty: HashSet<TypeId>,
    /// Types whose generation was already bumped — and whose persisted
    /// segment already dropped — since the last column persist. A
    /// repeat mutation of such a type skips the meta write and segment
    /// delete: the on-store state it would produce already holds.
    /// [`ShreddedDoc::persist_dirty_columns`] clears this set when it
    /// writes fresh segments.
    pub(in crate::store) bumped_since_persist: HashSet<TypeId>,
    /// Document epoch: bumped once per applied mutation batch. A
    /// [`Snapshot`] pins one epoch; the published snapshot is reused
    /// while the epoch has not moved.
    pub(in crate::store) epoch: u64,
    /// Coordination state shared with every published snapshot (the
    /// writer gate, the per-type touch epochs, and the live-snapshot
    /// registry the copy-on-write pin walks).
    pub(in crate::store) shared: Arc<DocShared>,
    /// The most recently published snapshot, kept so repeated
    /// [`ShreddedDoc::snapshot`] calls between mutations are one Arc
    /// clone, and so republication after a mutation can inherit the
    /// old snapshot's still-current lazily-resolved columns.
    published: Mutex<Option<Arc<Snapshot>>>,
}

impl std::fmt::Debug for ShreddedDoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShreddedDoc")
            .field("types", &self.shape.types().len())
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

pub(in crate::store) const META_SHAPE_KEY: &[u8] = b"shape";
/// Meta key of the column generation counter (u64 LE).
const META_COLGEN_KEY: &[u8] = b"colgen";
/// Meta key prefix of per-type generation overrides: `"tygen."` +
/// big-endian type id → u64 LE. Cleared wholesale by a full re-shred.
pub(in crate::store) const META_TYGEN_PREFIX: &[u8] = b"tygen.";

/// Meta key of type `t`'s generation override.
pub(in crate::store) fn tygen_key(t: TypeId) -> Vec<u8> {
    let mut k = Vec::with_capacity(META_TYGEN_PREFIX.len() + 4);
    k.extend_from_slice(META_TYGEN_PREFIX);
    k.extend_from_slice(&t.0.to_be_bytes());
    k
}

/// Scan the persisted per-type generations out of the meta tree.
fn load_tygens(meta: &Tree) -> HashMap<TypeId, u64> {
    let mut out = HashMap::new();
    for (k, v) in meta.scan_prefix(META_TYGEN_PREFIX) {
        let (Some(id), Some(gen)) = (
            k.get(META_TYGEN_PREFIX.len()..)
                .filter(|rest| rest.len() == 4)
                .map(|rest| TypeId(u32::from_be_bytes(rest.try_into().unwrap()))),
            v.try_into().ok().map(u64::from_le_bytes),
        ) else {
            continue;
        };
        out.insert(id, gen);
    }
    out
}

pub(in crate::store) fn typeseq_key(t: TypeId, dewey: &Dewey) -> Vec<u8> {
    let mut k = Vec::with_capacity(4 + dewey.len() * 4);
    k.extend_from_slice(&t.0.to_be_bytes());
    k.extend_from_slice(&dewey.encode());
    k
}

pub(in crate::store) fn node_value(t: TypeId, text: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + text.len());
    v.extend_from_slice(&t.0.to_le_bytes());
    v.extend_from_slice(text.as_bytes());
    v
}

pub(in crate::store) fn parse_node_value(v: &[u8]) -> Option<(TypeId, String)> {
    let t = TypeId(u32::from_le_bytes(v.get(..4)?.try_into().ok()?));
    let text = String::from_utf8(v.get(4..)?.to_vec()).ok()?;
    Some((t, text))
}

/// Do two columns share a row prefix of `level` components? Sorted-merge
/// over the flat component arrays — no key decoding, no allocation. The
/// trailing side gallops to the other side's prefix instead of stepping
/// row by row, so a skewed pair (one type far denser than the other)
/// costs the sparse side's length times a logarithmic skip, not a full
/// linear merge.
fn co_occur_columns(a: &TypeColumn, b: &TypeColumn, level: usize) -> bool {
    debug_assert!(level <= a.width() && level <= b.width());
    let (ac, bc) = (a.comps(), b.comps());
    let (aw, bw) = (a.width(), b.width());
    let (an, bn) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < an && j < bn {
        let x = &ac[i * aw..i * aw + level];
        let y = &bc[j * bw..j * bw + level];
        match cmp_prefix(x, y) {
            Cmp::Equal => return true,
            Cmp::Less => {
                i = gallop_partition(ac, aw, i + 1, an, |row| cmp_prefix(row, y) == Cmp::Less)
            }
            Cmp::Greater => {
                j = gallop_partition(bc, bw, j + 1, bn, |row| cmp_prefix(row, x) == Cmp::Less)
            }
        }
    }
    false
}

/// State a [`ShreddedDoc`] shares with every [`Snapshot`] it has
/// published — the coordination points of the single-writer /
/// many-snapshot-readers protocol.
///
/// * `gate` — excludes snapshot *lazy column loads* from the span of a
///   mutation's tree writes: a load takes the read side, a mutation
///   holds the write side across its whole transaction. Without it a
///   snapshot faulting in a column mid-mutation could decode a torn
///   `typeseq` range.
/// * `touched` — the document epoch at which each type was last
///   mutated. Per-type *generations* are not a precise version signal
///   (repeat touches between persists skip the bump), so this map is
///   the staleness check snapshots and republication use.
/// * `live` — weak registry of outstanding snapshots; the writer
///   copy-on-writes the pre-mutation column into each live snapshot
///   that has not resolved the touched type yet ([`ShreddedDoc`]'s
///   `cow_pin`), which is what makes lazy snapshot loads sound.
pub(in crate::store) struct DocShared {
    pub(in crate::store) gate: RwLock<()>,
    pub(in crate::store) touched: Mutex<HashMap<TypeId, u64>>,
    pub(in crate::store) live: Mutex<Vec<Weak<Snapshot>>>,
}

impl DocShared {
    fn new() -> Arc<DocShared> {
        Arc::new(DocShared {
            gate: RwLock::new(()),
            touched: Mutex::new(HashMap::new()),
            live: Mutex::new(Vec::new()),
        })
    }
}

/// Decode one type's column straight from the `typeseq` tree — the
/// shared fallback build both [`ShreddedDoc::column`] and
/// [`Snapshot::column`] use when no valid persisted segment exists.
/// Malformed entries are skipped, matching the lenient decoding of the
/// scans this replaces.
fn decode_typeseq_column(typeseq: &Tree, width: usize, t: TypeId) -> TypeColumn {
    let mut comps: Vec<u32> = Vec::new();
    let mut texts = String::new();
    let mut offsets: Vec<u32> = vec![0];
    for (k, v) in typeseq.scan_prefix(&t.0.to_be_bytes()) {
        let mark = comps.len();
        // A torn tree can surface keys that violate the scan bounds,
        // including ones shorter than the type prefix — skip them
        // like any other malformed entry instead of slicing past
        // the end.
        if !k.starts_with(&t.0.to_be_bytes())
            || !decode_components_into(&k[4..], &mut comps)
            || comps.len() - mark != width
        {
            comps.truncate(mark);
            continue;
        }
        match std::str::from_utf8(&v) {
            Ok(text) => texts.push_str(text),
            Err(_) => {
                comps.truncate(mark);
                continue;
            }
        }
        offsets.push(texts.len() as u32);
    }
    TypeColumn {
        width,
        backing: Backing::Heap {
            comps,
            texts,
            offsets,
        },
    }
}

// ---- streaming shred machinery (external sort over store segments) ----

/// Name prefix of the temporary segments the external sort spills
/// sorted runs into. They exist only for the duration of one streaming
/// shred; [`RunGuard`] deletes them on both the success and the abort
/// path, and a fresh shred clears any a crash left behind.
const RUN_SEG_PREFIX: &str = "__shredrun.";

/// Per-entry bookkeeping overhead charged against the run budget: two
/// `Vec` headers plus allocator slack.
const RUN_ENTRY_OVERHEAD: usize = 48;

/// Deletes every registered spill segment when dropped — after the
/// merge on success, and on any abort path, so a failed streaming
/// shred never leaks `__shredrun.*` segments.
struct RunGuard<'a> {
    store: &'a Store,
    names: RefCell<Vec<String>>,
}

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        for name in self.names.borrow().iter() {
            let _ = self.store.delete_segment(name);
        }
    }
}

/// One sorted stream of the external sort: entries accumulate in a
/// fixed-size buffer; when the buffer's byte estimate crosses `budget`
/// it is sorted and spilled to a store segment as one run. The
/// in-memory tail left at end of input becomes the final run without
/// ever being serialized.
struct RunSpiller<'a> {
    store: &'a Store,
    guard: &'a RunGuard<'a>,
    tag: &'static str,
    budget: usize,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    bytes: usize,
    runs: Vec<String>,
    count: u64,
}

impl<'a> RunSpiller<'a> {
    fn new(store: &'a Store, guard: &'a RunGuard<'a>, tag: &'static str, budget: usize) -> Self {
        RunSpiller {
            store,
            guard,
            tag,
            budget,
            entries: Vec::new(),
            bytes: 0,
            runs: Vec::new(),
            count: 0,
        }
    }

    fn push(&mut self, key: Vec<u8>, value: Vec<u8>) -> MorphResult<()> {
        self.bytes += key.len() + value.len() + RUN_ENTRY_OVERHEAD;
        self.count += 1;
        self.entries.push((key, value));
        if self.bytes >= self.budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> MorphResult<()> {
        if self.entries.is_empty() {
            return Ok(());
        }
        self.entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        // Records are length-prefixed and drained as they serialize,
        // so the peak is one run buffer plus its flat image.
        let mut blob: Vec<u8> = Vec::with_capacity(self.bytes);
        for (k, v) in self.entries.drain(..) {
            blob.extend_from_slice(&(k.len() as u32).to_le_bytes());
            blob.extend_from_slice(&(v.len() as u32).to_le_bytes());
            blob.extend_from_slice(&k);
            blob.extend_from_slice(&v);
        }
        let name = format!("{RUN_SEG_PREFIX}{}.{}", self.tag, self.runs.len());
        self.store
            .put_segment(&name, &blob)
            .in_op("spill shred run")?;
        self.guard.names.borrow_mut().push(name.clone());
        self.runs.push(name);
        self.bytes = 0;
        Ok(())
    }

    /// Finish the stream: sort the tail, map every spilled run back in
    /// (read-only, page-aligned — not heap on a file-backed store),
    /// and return the k-way merge cursor. `produced` counts the pairs
    /// the merge yields so the caller can verify none were lost to a
    /// torn run.
    fn into_merge(mut self, produced: &Cell<u64>) -> MorphResult<MergeStream<'_>> {
        self.entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut sources = Vec::with_capacity(self.runs.len() + 1);
        for name in &self.runs {
            let data = self
                .store
                .get_segment(name, true)
                .in_op("map shred run")?
                .ok_or(MorphError::Internal("shred run segment vanished"))?;
            sources.push(RunSource::Seg { data, pos: 0 });
        }
        sources.push(RunSource::Mem {
            iter: std::mem::take(&mut self.entries).into_iter(),
        });
        let heap = sources
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.next().map(|(k, v)| std::cmp::Reverse((k, v, i))))
            .collect();
        Ok(MergeStream {
            sources,
            heap,
            produced,
        })
    }
}

/// One input to the k-way merge.
enum RunSource {
    /// A spilled, sorted run mapped back from a store segment.
    Seg { data: SegmentData, pos: usize },
    /// The in-memory tail buffered when input ended.
    Mem {
        iter: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    },
}

impl RunSource {
    fn next(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        match self {
            RunSource::Mem { iter } => iter.next(),
            RunSource::Seg { data, pos } => {
                let rest = &data[*pos..];
                if rest.is_empty() {
                    return None;
                }
                // A truncated record ends the run early; the caller's
                // produced-count check turns that into an error.
                if rest.len() < 8 {
                    *pos = data.len();
                    return None;
                }
                let klen = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                let vlen = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
                let Some(body) = rest.get(8..8 + klen + vlen) else {
                    *pos = data.len();
                    return None;
                };
                let pair = (body[..klen].to_vec(), body[klen..].to_vec());
                *pos += 8 + klen + vlen;
                Some(pair)
            }
        }
    }
}

/// A run head in the merge heap: key, value, and source index. Keys
/// are unique across runs, so tuple order never reaches the index.
type MergeHead = std::cmp::Reverse<(Vec<u8>, Vec<u8>, usize)>;

/// K-way merge over sorted runs. A min-heap of run heads keeps each
/// pop at O(log k) key comparisons, so the merge stays cheap even when
/// an out-of-core document spills hundreds of runs.
struct MergeStream<'p> {
    sources: Vec<RunSource>,
    heap: std::collections::BinaryHeap<MergeHead>,
    produced: &'p Cell<u64>,
}

impl Iterator for MergeStream<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        let std::cmp::Reverse((k, v, i)) = self.heap.pop()?;
        if let Some((nk, nv)) = self.sources[i].next() {
            self.heap.push(std::cmp::Reverse((nk, nv, i)));
        }
        self.produced.set(self.produced.get() + 1);
        Some((k, v))
    }
}

/// Error and overflow signals latched by [`ColumnTee`] while it runs
/// inside the bulk loader's iterator (which cannot carry a `Result`).
struct TeeState {
    error: Option<MorphError>,
    overflowed: Vec<TypeId>,
}

/// One type's column under construction inside the tee.
struct ColBuild {
    t: TypeId,
    width: usize,
    comps: Vec<u32>,
    offsets: Vec<u32>,
    texts: String,
    dropped: bool,
}

/// Wraps the sorted `typeseq` merge and builds each type's column from
/// the same pass, persisting its segment the moment the type's key
/// range ends — the streaming analogue of `persist_all_columns`. The
/// decode mirrors [`decode_typeseq_column`] entry for entry (including
/// its malformed-entry skips), so the persisted bytes are identical to
/// what a post-shred decode would produce. A column that outgrows
/// `cap` is abandoned mid-build and recorded for a bounded per-type
/// fallback after the merge.
struct ColumnTee<'a, I> {
    inner: I,
    cur: Option<ColBuild>,
    state: &'a RefCell<TeeState>,
    store: &'a Store,
    types: &'a TypeTable,
    generation: u64,
    persist: bool,
    cap: usize,
}

impl<I> ColumnTee<'_, I> {
    fn finalize(&mut self) {
        let Some(b) = self.cur.take() else { return };
        if b.dropped {
            self.state.borrow_mut().overflowed.push(b.t);
            return;
        }
        if !self.persist {
            return;
        }
        let col = TypeColumn::from_parts(b.width, b.comps, b.offsets, b.texts);
        if let Err(e) = self
            .store
            .put_segment(
                &colseg::segment_name(b.t),
                &col.encode_segment(self.generation),
            )
            .in_op("persist column segment")
        {
            let mut st = self.state.borrow_mut();
            if st.error.is_none() {
                st.error = Some(e);
            }
        }
    }

    fn absorb(&mut self, k: &[u8], v: &[u8]) {
        if self.state.borrow().error.is_some() {
            return;
        }
        let Some(tb) = k.get(0..4) else { return };
        let t = TypeId(u32::from_be_bytes(tb.try_into().unwrap()));
        match &self.cur {
            Some(b) if b.t == t => {}
            _ => {
                self.finalize();
                self.cur = Some(ColBuild {
                    t,
                    width: self.types.dewey_len(t),
                    comps: Vec::new(),
                    offsets: vec![0],
                    texts: String::new(),
                    dropped: false,
                });
            }
        }
        let b = self.cur.as_mut().expect("column build installed above");
        if b.dropped {
            return;
        }
        let mark = b.comps.len();
        if !decode_components_into(&k[4..], &mut b.comps) || b.comps.len() - mark != b.width {
            b.comps.truncate(mark);
            return;
        }
        match std::str::from_utf8(v) {
            Ok(text) => b.texts.push_str(text),
            Err(_) => {
                b.comps.truncate(mark);
                return;
            }
        }
        b.offsets.push(b.texts.len() as u32);
        if b.comps.len() * 4 + b.offsets.len() * 4 + b.texts.len() > self.cap {
            b.comps = Vec::new();
            b.offsets = Vec::new();
            b.texts = String::new();
            b.dropped = true;
        }
    }
}

impl<I: Iterator<Item = (Vec<u8>, Vec<u8>)>> Iterator for ColumnTee<'_, I> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        match self.inner.next() {
            Some((k, v)) => {
                self.absorb(&k, &v);
                Some((k, v))
            }
            None => {
                self.finalize();
                None
            }
        }
    }
}

/// One pass over a SAX-style event stream: assign Dewey numbers, grow
/// the adorned shape, and emit each vertex's `nodes` and `typeseq`
/// entries through the two sinks. O(depth) state of its own — the
/// sinks decide whether entries accumulate, spill, or insert directly.
fn drive_parse<E: EventSource>(
    reader: &mut E,
    builder: &mut ShapeBuilder,
    mut node: impl FnMut(Vec<u8>, Vec<u8>) -> MorphResult<()>,
    mut tyseq: impl FnMut(Vec<u8>, Vec<u8>) -> MorphResult<()>,
) -> MorphResult<()> {
    struct Frame {
        dewey: Dewey,
        type_id: TypeId,
        next_ordinal: u32,
        text: String,
    }
    let mut stack: Vec<Frame> = Vec::new();
    loop {
        match reader.next_event()? {
            XmlEvent::StartElement { name, attrs } => {
                let type_id = builder.open(&name);
                let dewey = match stack.last_mut() {
                    Some(parent) => {
                        parent.next_ordinal += 1;
                        parent.dewey.child(parent.next_ordinal)
                    }
                    None => Dewey::root(),
                };
                let mut frame = Frame {
                    dewey,
                    type_id,
                    next_ordinal: 0,
                    text: String::new(),
                };
                // Attributes become child vertices, numbered first.
                for (aname, avalue) in &attrs {
                    let at = builder.attribute(aname);
                    frame.next_ordinal += 1;
                    let ad = frame.dewey.child(frame.next_ordinal);
                    node(ad.encode(), node_value(at, avalue))?;
                    tyseq(typeseq_key(at, &ad), avalue.as_bytes().to_vec())?;
                }
                stack.push(frame);
            }
            XmlEvent::Text(t) => {
                if let Some(frame) = stack.last_mut() {
                    frame.text.push_str(&t);
                }
            }
            XmlEvent::EndElement { .. } => {
                let frame = stack.pop().expect("balanced events");
                builder.close();
                let text = frame.text.trim();
                node(frame.dewey.encode(), node_value(frame.type_id, text))?;
                tyseq(
                    typeseq_key(frame.type_id, &frame.dewey),
                    text.as_bytes().to_vec(),
                )?;
            }
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
            XmlEvent::Eof => return Ok(()),
        }
    }
}

/// Compute the column generation a (re-)shred publishes, plus the
/// stale per-type overrides it must drop. Reads only — callers decide
/// when the writes land relative to the data load (`commit_meta`).
fn plan_generation(meta: &Tree) -> MorphResult<(u64, Vec<TypeId>)> {
    let stale_tygens = load_tygens(meta);
    // Bump the column generation unconditionally: even when this
    // shred doesn't persist columns, segments left by an earlier
    // shred of the same store must go stale. A re-shred supersedes
    // every per-type override too: take the new store-wide
    // generation past them all, then drop them.
    let generation = meta
        .get(META_COLGEN_KEY)
        .in_op("read column generation")?
        .and_then(|v| Some(u64::from_le_bytes(v.try_into().ok()?)))
        .unwrap_or(0)
        .max(stale_tygens.values().copied().max().unwrap_or(0))
        + 1;
    Ok((generation, stale_tygens.keys().copied().collect()))
}

/// Publish shred metadata: the adorned shape, the new store-wide
/// column generation, and the removal of every superseded per-type
/// override (see [`plan_generation`]).
fn commit_meta(
    meta: &Tree,
    shape: &AdornedShape,
    generation: u64,
    stale: &[TypeId],
) -> MorphResult<()> {
    meta.insert(META_SHAPE_KEY, &shape.to_bytes())
        .in_op("insert adorned shape")?;
    meta.insert(META_COLGEN_KEY, &generation.to_le_bytes())
        .in_op("write column generation")?;
    for &t in stale {
        meta.delete(&tygen_key(t))
            .in_op("clear per-type generation")?;
    }
    Ok(())
}

impl ShreddedDoc {
    /// Shred an XML document (as text) into the store with the default
    /// [`ShredOptions`].
    pub fn shred_str(store: &Store, xml: &str) -> MorphResult<ShreddedDoc> {
        Self::shred_str_with(store, xml, &ShredOptions::default())
    }

    /// Shred an XML document with explicit [`ShredOptions`].
    pub fn shred_str_with(
        store: &Store,
        xml: &str,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        Self::shred_events_with(store, &mut XmlReader::new(xml), opts)
    }

    /// Shred a document pulled incrementally from any [`std::io::Read`]
    /// with the default [`ShredOptions`]. The parser keeps only a
    /// bounded window of raw bytes; add a
    /// [`ShredOptions::memory_budget`] and the whole pipeline runs in
    /// memory independent of document size.
    pub fn shred_reader<R: std::io::Read>(store: &Store, reader: R) -> MorphResult<ShreddedDoc> {
        Self::shred_reader_with(store, reader, &ShredOptions::default())
    }

    /// Shred from any [`std::io::Read`] with explicit [`ShredOptions`].
    pub fn shred_reader_with<R: std::io::Read>(
        store: &Store,
        reader: R,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        Self::shred_events_with(store, &mut XmlStreamReader::new(reader), opts)
    }

    /// Shred a document straight from a file, without reading it into
    /// memory first, with the default [`ShredOptions`].
    pub fn shred_file(store: &Store, path: &std::path::Path) -> MorphResult<ShreddedDoc> {
        Self::shred_file_with(store, path, &ShredOptions::default())
    }

    /// Shred a file with explicit [`ShredOptions`].
    pub fn shred_file_with(
        store: &Store,
        path: &std::path::Path,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        let file = std::fs::File::open(path).map_err(|e| MorphError::Store {
            op: format!("open document {}", path.display()),
            source: StoreError::Io(Arc::new(e)),
        })?;
        Self::shred_reader_with(store, file, opts)
    }

    /// The single entry point the string/reader/file fronts funnel
    /// into: pick the load strategy from the options.
    fn shred_events_with<E: EventSource>(
        store: &Store,
        reader: &mut E,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        if !opts.bulk_load {
            Self::shred_incremental(store, reader, opts)
        } else if let Some(budget) = opts.memory_budget {
            Self::shred_bulk_streaming(store, reader, opts, budget)
        } else {
            Self::shred_bulk_in_memory(store, reader, opts)
        }
    }

    /// The insert-at-a-time path (`bulk_load(false)`), wrapped in a
    /// single store transaction: a parse or insert error rolls the
    /// whole shred back, leaving the store byte-identical to its
    /// pre-shred image instead of half-populated trees.
    fn shred_incremental<E: EventSource>(
        store: &Store,
        reader: &mut E,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        // Trees are opened inside the transaction so a rollback
        // removes their catalog entries along with their pages.
        let txn = store.begin().in_op("begin shred transaction")?;
        let nodes = store.open_tree("nodes").in_op("open tree \"nodes\"")?;
        let typeseq = store.open_tree("typeseq").in_op("open tree \"typeseq\"")?;
        let meta = store.open_tree("meta").in_op("open tree \"meta\"")?;
        let mut builder = AdornedShape::builder();
        drive_parse(
            reader,
            &mut builder,
            |k, v| {
                nodes.insert(&k, &v).in_op("insert into tree \"nodes\"")?;
                Ok(())
            },
            |k, v| {
                typeseq
                    .insert(&k, &v)
                    .in_op("insert into tree \"typeseq\"")?;
                Ok(())
            },
        )?;
        let shape = builder.finish();
        let (generation, stale) = plan_generation(&meta)?;
        commit_meta(&meta, &shape, generation, &stale)?;
        txn.commit().in_op("commit shred transaction")?;
        let doc = Self::fresh_doc(store, nodes, typeseq, meta, shape, generation);
        // Column persistence flushes, which must wait for the commit.
        if opts.persist_columns && store.is_persistent() {
            doc.persist_all_columns()?;
        }
        if opts.eager_columns {
            doc.preload_all();
        }
        Ok(doc)
    }

    /// The all-in-memory bulk path: collect every entry pair, sort
    /// once, pack both trees bottom-up. Fastest when the document
    /// comfortably fits; [`ShredOptions::memory_budget`] switches to
    /// the external sort instead. Trees are opened only after the
    /// parse succeeds, so a malformed document leaves the store
    /// untouched.
    fn shred_bulk_in_memory<E: EventSource>(
        store: &Store,
        reader: &mut E,
        opts: &ShredOptions,
    ) -> MorphResult<ShreddedDoc> {
        let mut builder = AdornedShape::builder();
        let mut node_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut typeseq_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        drive_parse(
            reader,
            &mut builder,
            |k, v| {
                node_entries.push((k, v));
                Ok(())
            },
            |k, v| {
                typeseq_entries.push((k, v));
                Ok(())
            },
        )?;
        let shape = builder.finish();
        let nodes = store.open_tree("nodes").in_op("open tree \"nodes\"")?;
        let typeseq = store.open_tree("typeseq").in_op("open tree \"typeseq\"")?;
        let meta = store.open_tree("meta").in_op("open tree \"meta\"")?;
        node_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        typeseq_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        nodes
            .bulk_load(node_entries, opts.fill_factor)
            .in_op("bulk-load tree \"nodes\"")?;
        typeseq
            .bulk_load(typeseq_entries, opts.fill_factor)
            .in_op("bulk-load tree \"typeseq\"")?;
        let (generation, stale) = plan_generation(&meta)?;
        commit_meta(&meta, &shape, generation, &stale)?;
        let doc = Self::fresh_doc(store, nodes, typeseq, meta, shape, generation);
        if opts.persist_columns && store.is_persistent() {
            doc.persist_all_columns()?;
        }
        if opts.eager_columns {
            doc.preload_all();
        }
        Ok(doc)
    }

    /// The external-sort bulk path ([`ShredOptions::memory_budget`]):
    /// entries accumulate in fixed-size run buffers, full runs are
    /// sorted and spilled to temporary store segments, and a k-way
    /// merge feeds the sorted stream straight into the bottom-up tree
    /// packer — with the `typeseq` pass teed through the column
    /// builder so persisted segments come out of the same scan. Peak
    /// tracked memory is proportional to the budget, not the document.
    fn shred_bulk_streaming<E: EventSource>(
        store: &Store,
        reader: &mut E,
        opts: &ShredOptions,
        budget: usize,
    ) -> MorphResult<ShreddedDoc> {
        // A crashed earlier shred may have left runs behind; clear
        // them so their names are free and their pages reclaimed.
        for (name, _) in store.segment_entries().in_op("list segments")? {
            if name.starts_with(RUN_SEG_PREFIX) {
                store.delete_segment(&name).in_op("drop stale shred run")?;
            }
        }
        let guard = RunGuard {
            store,
            names: RefCell::new(Vec::new()),
        };
        // Halve the budget across the two sorted streams, and halve
        // again so a full run buffer plus its transient spill image
        // (or, later, the merge tail plus one column under
        // construction) stay inside each stream's share. The floor
        // keeps a degenerate budget from spilling per-entry runs.
        let per = (budget / 4).max(4 * 1024);
        let mut node_runs = RunSpiller::new(store, &guard, "n", per);
        let mut tyseq_runs = RunSpiller::new(store, &guard, "t", per);
        let mut builder = AdornedShape::builder();
        drive_parse(
            reader,
            &mut builder,
            |k, v| node_runs.push(k, v),
            |k, v| tyseq_runs.push(k, v),
        )?;
        let shape = builder.finish();

        let nodes = store.open_tree("nodes").in_op("open tree \"nodes\"")?;
        let typeseq = store.open_tree("typeseq").in_op("open tree \"typeseq\"")?;
        let meta = store.open_tree("meta").in_op("open tree \"meta\"")?;
        // The tee stamps segments with the new generation, so plan it
        // before the merge; the meta writes land after, in the same
        // order as the in-memory path.
        let (generation, stale) = plan_generation(&meta)?;

        let expect_nodes = node_runs.count;
        let produced = Cell::new(0u64);
        let merge = node_runs.into_merge(&produced)?;
        nodes
            .bulk_load(merge, opts.fill_factor)
            .in_op("bulk-load tree \"nodes\"")?;
        if produced.get() != expect_nodes {
            return Err(MorphError::Internal("shred run lost entries in merge"));
        }

        let persist = opts.persist_columns && store.is_persistent();
        let expect_tyseq = tyseq_runs.count;
        let produced = Cell::new(0u64);
        let state = RefCell::new(TeeState {
            error: None,
            overflowed: Vec::new(),
        });
        let tee = ColumnTee {
            inner: tyseq_runs.into_merge(&produced)?,
            cur: None,
            state: &state,
            store,
            types: shape.types(),
            generation,
            persist,
            cap: per,
        };
        typeseq
            .bulk_load(tee, opts.fill_factor)
            .in_op("bulk-load tree \"typeseq\"")?;
        if produced.get() != expect_tyseq {
            return Err(MorphError::Internal("shred run lost entries in merge"));
        }
        let state = state.into_inner();
        if let Some(e) = state.error {
            return Err(e);
        }

        commit_meta(&meta, &shape, generation, &stale)?;
        drop(guard); // success: delete the spilled runs
        let doc = Self::fresh_doc(store, nodes, typeseq, meta, shape, generation);
        if persist {
            // Columns too large for the tee's slice of the budget fall
            // back to a per-type decode — bounded by the largest
            // single column, not the document — and are not cached.
            for t in state.overflowed {
                let width = doc.shape.types().dewey_len(t);
                let col = decode_typeseq_column(&doc.typeseq, width, t);
                store
                    .put_segment(&colseg::segment_name(t), &col.encode_segment(generation))
                    .in_op("persist column segment")?;
            }
            store.flush().in_op("flush column segments")?;
        }
        if opts.eager_columns {
            doc.preload_all();
        }
        Ok(doc)
    }

    /// A freshly shredded handle over the given trees: empty caches,
    /// write-capable, epoch zero.
    fn fresh_doc(
        store: &Store,
        nodes: Tree,
        typeseq: Tree,
        meta: Tree,
        shape: AdornedShape,
        generation: u64,
    ) -> ShreddedDoc {
        ShreddedDoc {
            store: store.clone(),
            nodes,
            typeseq,
            meta,
            shape,
            generation,
            tygens: Mutex::new(HashMap::new()),
            next_gen: generation + 1,
            use_persisted: true,
            prefer_mmap: true,
            column_budget: AtomicUsize::new(usize::MAX),
            dist_cache: Mutex::new(HashMap::default()),
            columns: RwLock::new(HashMap::default()),
            plan_cache: RwLock::new(HashMap::default()),
            fallbacks: Mutex::new(Vec::new()),
            rebuilds: AtomicU64::new(0),
            merged_columns: AtomicU64::new(0),
            pending_deltas: Mutex::new(HashMap::new()),
            invalidated_columns: 0,
            dirty: HashSet::new(),
            bumped_since_persist: HashSet::new(),
            epoch: 0,
            shared: DocShared::new(),
            published: Mutex::new(None),
        }
    }

    /// Open an already-shredded document with the default
    /// [`OpenOptions`].
    pub fn open(store: &Store) -> MorphResult<ShreddedDoc> {
        Self::open_with(store, &OpenOptions::default())
    }

    /// Open an already-shredded document with explicit [`OpenOptions`].
    pub fn open_with(store: &Store, opts: &OpenOptions) -> MorphResult<ShreddedDoc> {
        let nodes = store.open_tree("nodes").in_op("open tree \"nodes\"")?;
        let typeseq = store.open_tree("typeseq").in_op("open tree \"typeseq\"")?;
        let meta = store.open_tree("meta").in_op("open tree \"meta\"")?;
        let bytes = meta
            .get(META_SHAPE_KEY)
            .in_op("read adorned shape")?
            .ok_or(MorphError::Internal("store holds no shredded document"))?;
        let shape = AdornedShape::from_bytes(&bytes)
            .ok_or(MorphError::Internal("corrupt adorned shape"))?;
        let generation = meta
            .get(META_COLGEN_KEY)
            .in_op("read column generation")?
            .and_then(|v| Some(u64::from_le_bytes(v.try_into().ok()?)))
            .unwrap_or(0);
        let tygens = load_tygens(&meta);
        let next_gen = generation.max(tygens.values().copied().max().unwrap_or(0)) + 1;
        let doc = ShreddedDoc {
            store: store.clone(),
            nodes,
            typeseq,
            meta,
            shape,
            generation,
            tygens: Mutex::new(tygens),
            next_gen,
            use_persisted: opts.persisted_columns,
            prefer_mmap: opts.mmap,
            column_budget: AtomicUsize::new(opts.column_budget.unwrap_or(usize::MAX)),
            dist_cache: Mutex::new(HashMap::default()),
            columns: RwLock::new(HashMap::default()),
            plan_cache: RwLock::new(HashMap::default()),
            fallbacks: Mutex::new(Vec::new()),
            rebuilds: AtomicU64::new(0),
            merged_columns: AtomicU64::new(0),
            pending_deltas: Mutex::new(HashMap::new()),
            invalidated_columns: 0,
            dirty: HashSet::new(),
            bumped_since_persist: HashSet::new(),
            epoch: 0,
            shared: DocShared::new(),
            published: Mutex::new(None),
        };
        match &opts.preload {
            Preload::None => {}
            Preload::All => doc.preload_all(),
            Preload::Paths(paths) => {
                for dotted in paths {
                    let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
                    if let Some(t) = doc.shape.types().lookup(&path) {
                        let _ = doc.column(t);
                    }
                }
            }
        }
        Ok(doc)
    }

    /// The document's adorned shape.
    pub fn shape(&self) -> &AdornedShape {
        &self.shape
    }

    /// The document's type table.
    pub fn types(&self) -> &TypeTable {
        self.shape.types()
    }

    /// Number of instances of a type.
    pub fn instance_count(&self, t: TypeId) -> u64 {
        self.shape.instance_count(t)
    }

    /// Direct text of a node.
    pub fn node_text(&self, dewey: &Dewey) -> MorphResult<Option<String>> {
        Ok(self
            .nodes
            .get(&dewey.encode())
            .in_op("read tree \"nodes\"")?
            .and_then(|v| parse_node_value(&v))
            .map(|(_, text)| text))
    }

    /// Type of a node.
    pub fn node_type(&self, dewey: &Dewey) -> MorphResult<Option<TypeId>> {
        Ok(self
            .nodes
            .get(&dewey.encode())
            .in_op("read tree \"nodes\"")?
            .and_then(|v| parse_node_value(&v))
            .map(|(t, _)| t))
    }

    // ---- snapshot publication (single writer, many readers) ----

    /// The document epoch: how many mutation batches have been applied
    /// to this handle. A [`Snapshot`] pins one epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin an immutable, epoch-versioned view of the document.
    ///
    /// The snapshot is self-contained: it freezes the adorned shape,
    /// the per-type generations, and every currently resolved column
    /// `Arc`, and it resolves further columns lazily from the store —
    /// which stays sound because the writer copy-on-writes the
    /// pre-mutation column into every live snapshot *before* touching
    /// the trees (`cow_pin`), so a type a snapshot has not resolved is
    /// by construction unchanged since the snapshot's epoch.
    ///
    /// Publication is cached: while the epoch has not moved, every call
    /// returns the same `Arc`. Republication after a mutation settles
    /// all pending column deltas first (snapshots only ever hold
    /// settled columns) and inherits the previous snapshot's resolved
    /// columns for types the interim mutations did not touch.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        if let Some(snap) = self.published.lock().unwrap().as_ref() {
            if snap.epoch == self.epoch {
                return Arc::clone(snap);
            }
        }
        // Settle every pending delta outside the publication lock: the
        // snapshot must only see merged columns, and `column` both
        // settles and caches them on this handle.
        let pending: Vec<TypeId> = self
            .pending_deltas
            .lock()
            .unwrap()
            .keys()
            .copied()
            .collect();
        for t in pending {
            let _ = self.column(t);
        }
        let mut published = self.published.lock().unwrap();
        if let Some(snap) = published.as_ref() {
            if snap.epoch == self.epoch {
                return Arc::clone(snap);
            }
        }
        let mut columns = self.columns.read().unwrap().clone();
        if let Some(old) = published.as_ref() {
            // Carry over the old snapshot's lazily-resolved columns for
            // types untouched since its epoch — they are still current,
            // and dropping them would re-fault the whole working set
            // after every mutation.
            let touched = self.shared.touched.lock().unwrap();
            for (t, col) in old.columns.read().unwrap().iter() {
                if touched.get(t).copied().unwrap_or(0) <= old.epoch {
                    columns.entry(*t).or_insert_with(|| Arc::clone(col));
                }
            }
        }
        let snap = Arc::new(Snapshot {
            epoch: self.epoch,
            shape: Arc::new(self.shape.clone()),
            store: self.store.clone(),
            typeseq: self.typeseq.clone(),
            generation: self.generation,
            tygens: self.tygens.lock().unwrap().clone(),
            use_persisted: self.use_persisted,
            prefer_mmap: self.prefer_mmap,
            columns: RwLock::new(columns),
            // The document caches are kept current by scoped
            // invalidation (entries touching a mutated type retire at
            // mutation time), so seeding from them is sound.
            dist_cache: Mutex::new(self.dist_cache.lock().unwrap().clone()),
            plan_cache: RwLock::new(self.plan_cache.read().unwrap().clone()),
            shared: Arc::clone(&self.shared),
        });
        let mut live = self.shared.live.lock().unwrap();
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&snap));
        *published = Some(Arc::clone(&snap));
        snap
    }

    /// The writer half of copy-on-write: resolve the *pre-mutation*
    /// column of every type in `types` into each live snapshot that has
    /// not resolved it yet. Mutations call this before their first tree
    /// write; afterwards every live snapshot either already held the
    /// type (some earlier state, pinned by its own `Arc`) or now holds
    /// the state current up to this mutation — so no snapshot will ever
    /// lazily load a post-mutation column for a type it predates.
    pub(in crate::store) fn cow_pin<I: IntoIterator<Item = TypeId>>(&mut self, types: I) {
        let live: Vec<Arc<Snapshot>> = {
            let mut registry = self.shared.live.lock().unwrap();
            registry.retain(|w| w.strong_count() > 0);
            registry.iter().filter_map(Weak::upgrade).collect()
        };
        if live.is_empty() {
            return;
        }
        for t in types {
            let mut resolved: Option<Arc<TypeColumn>> = None;
            for snap in &live {
                if snap.columns.read().unwrap().contains_key(&t) {
                    continue;
                }
                // `column` settles any pending delta, so this is the
                // fully merged pre-mutation state; computed once per
                // type however many snapshots need the pin.
                let col = Arc::clone(resolved.get_or_insert_with(|| self.column(t)));
                snap.columns.write().unwrap().insert(t, col);
            }
        }
    }

    // ---- the columnar read path ----

    /// The [`TypeColumn`] of `t`, loaded on first touch and cached.
    /// Loading prefers a persisted column segment — memory-mapped when
    /// the store and platform allow — and falls back to decoding the
    /// `typeseq` range (one sequential scan) when the segment is
    /// missing, stale, or corrupt. Malformed `typeseq` entries are
    /// skipped, matching the lenient decoding of the scans this
    /// replaces.
    pub fn column(&self, t: TypeId) -> Arc<TypeColumn> {
        // Settle deferred maintenance first: the lock is held across
        // the merge so a concurrent reader can't serve the stale
        // column while this one folds the pending delta in. The merge
        // is idempotent, so a base rebuilt from the already-mutated
        // typeseq (cache evicted since the mutation) is fine too.
        let mut pending = self.pending_deltas.lock().unwrap();
        if let Some(delta) = pending.remove(&t) {
            let base = match self.columns.read().unwrap().get(&t) {
                Some(col) => Arc::clone(col),
                None => Arc::new(self.load_column(t)),
            };
            let merged = Arc::new(super::mutate::merged_column(&base, &delta));
            self.columns.write().unwrap().insert(t, Arc::clone(&merged));
            self.merged_columns.fetch_add(1, Ordering::Relaxed);
            return merged;
        }
        drop(pending);
        if let Some(col) = self.columns.read().unwrap().get(&t) {
            return Arc::clone(col);
        }
        let built = Arc::new(self.load_column(t));
        let mut map = self.columns.write().unwrap();
        let col = Arc::clone(map.entry(t).or_insert(built));
        let budget = self.column_budget.load(Ordering::Relaxed);
        if budget != usize::MAX {
            // The budget bounds *all* column memory this document keeps
            // alive, and bytes pinned by live snapshots cannot be freed
            // by evicting cache entries — so the cache only gets what
            // the snapshots leave over.
            let pinned = Self::pinned_beyond(&map, &self.shared);
            let effective = budget.saturating_sub(pinned);
            if Self::enforce_budget(&mut map, effective, t) {
                // Evicted columns must not stay pinned by cached plans.
                self.plan_cache.write().unwrap().clear();
            }
        }
        col
    }

    /// The current column-cache budget, if bounded.
    pub fn column_budget(&self) -> Option<usize> {
        match self.column_budget.load(Ordering::Relaxed) {
            usize::MAX => None,
            b => Some(b),
        }
    }

    /// Retune the column-cache budget on a live document (`None` lifts
    /// the bound). Takes effect on the next column load; already-cached
    /// columns shrink to a lowered budget the next time any column is
    /// touched. Shared across everything holding this document — on a
    /// served store the last query to set a budget wins.
    pub fn set_column_budget(&self, budget: Option<usize>) {
        self.column_budget
            .store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Evict cached columns (never `keep`) until the cache fits the
    /// budget. Victims are taken in arbitrary hash order — the cache is
    /// a working set, not an LRU; evicted columns reload on next touch.
    fn enforce_budget(
        map: &mut HashMap<TypeId, Arc<TypeColumn>, FxBuild>,
        budget: usize,
        keep: TypeId,
    ) -> bool {
        let total = |m: &HashMap<TypeId, Arc<TypeColumn>, FxBuild>| {
            m.values()
                .map(|c| c.heap_bytes() + c.mapped_bytes())
                .sum::<usize>()
        };
        let mut evicted = false;
        while total(map) > budget && map.len() > 1 {
            let victim = map.keys().find(|&&k| k != keep).copied();
            match victim {
                Some(v) => {
                    map.remove(&v);
                    evicted = true;
                }
                None => break,
            };
        }
        evicted
    }

    /// Column bytes live snapshots keep alive *beyond* the entries in
    /// `map` (the document cache): each distinct column `Arc` held by a
    /// live snapshot but absent from the cache, counted once however
    /// many snapshots share it. These bytes are invisible to the cache
    /// totals yet just as resident — the memory-accounting half of the
    /// snapshot protocol.
    fn pinned_beyond(map: &HashMap<TypeId, Arc<TypeColumn>, FxBuild>, shared: &DocShared) -> usize {
        let live: Vec<Arc<Snapshot>> = {
            let mut reg = shared.live.lock().unwrap();
            reg.retain(|w| w.strong_count() > 0);
            reg.iter().filter_map(Weak::upgrade).collect()
        };
        if live.is_empty() {
            return 0;
        }
        let mut seen: Vec<*const TypeColumn> = map.values().map(Arc::as_ptr).collect();
        let mut total = 0usize;
        for snap in live {
            for col in snap.columns.read().unwrap().values() {
                let p = Arc::as_ptr(col);
                if !seen.contains(&p) {
                    seen.push(p);
                    total += col.heap_bytes() + col.mapped_bytes();
                }
            }
        }
        total
    }

    /// Bytes of column data outstanding [`Snapshot`]s hold resident
    /// beyond what the document's own cache accounts for (see
    /// [`ShreddedDoc::column_bytes`]): copy-on-write pins and lazily
    /// resolved snapshot columns whose `Arc`s the cache no longer (or
    /// never did) share. Each distinct column counts once. The cache
    /// budget treats these as spent — eviction cannot free them.
    pub fn snapshot_pinned_bytes(&self) -> usize {
        Self::pinned_beyond(&self.columns.read().unwrap(), &self.shared)
    }

    /// The generation a valid persisted segment of `t` must carry: the
    /// per-type override when `t` has been mutated since the last full
    /// shred, the store-wide shred generation otherwise.
    pub(in crate::store) fn expected_generation(&self, t: TypeId) -> u64 {
        self.tygens
            .lock()
            .unwrap()
            .get(&t)
            .copied()
            .unwrap_or(self.generation)
    }

    fn load_column(&self, t: TypeId) -> TypeColumn {
        let width = self.shape.types().dewey_len(t);
        if self.use_persisted {
            let name = colseg::segment_name(t);
            match self.store.get_segment(&name, self.prefer_mmap) {
                Ok(Some(seg)) => match colseg::parse(&seg, width, self.expected_generation(t)) {
                    Ok(parsed) => return TypeColumn::from_segment(seg, parsed),
                    Err(reason) => self.record_fallback(&name, reason),
                },
                Ok(None) => {}
                Err(e) => self.record_fallback(&name, &e.to_string()),
            }
        }
        self.build_column(t)
    }

    fn record_fallback(&self, segment: &str, reason: &str) {
        self.fallbacks
            .lock()
            .unwrap()
            .push(format!("{segment}: {reason}"));
    }

    fn build_column(&self, t: TypeId) -> TypeColumn {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        decode_typeseq_column(&self.typeseq, self.shape.types().dewey_len(t), t)
    }

    /// Write every type's column as a persisted segment, then flush so
    /// the segment catalog is durable. Runs at shred time (see
    /// [`ShredOptions::persist_columns`]).
    fn persist_all_columns(&self) -> MorphResult<()> {
        for t in self.shape.types().ids() {
            let col = self.column(t);
            let name = colseg::segment_name(t);
            let bytes = col.encode_segment(self.generation);
            self.store
                .put_segment(&name, &bytes)
                .in_op(&format!("write column segment {name:?}"))?;
        }
        self.store.flush().in_op("flush column segments")?;
        Ok(())
    }

    /// Test-only: persist every column in the legacy v1 (uncompressed)
    /// segment format, exactly as a pre-upgrade store wrote it, so the
    /// compatibility tests can prove the current read path still opens
    /// v1 stores byte-identically. Not part of the public API.
    #[doc(hidden)]
    pub fn persist_all_columns_v1(&self) -> MorphResult<()> {
        for t in self.shape.types().ids() {
            let col = self.column(t);
            let name = colseg::segment_name(t);
            let bytes = colseg::encode_v1(
                col.width,
                col.comps(),
                col.offsets(),
                col.texts(),
                self.expected_generation(t),
            );
            self.store
                .put_segment(&name, &bytes)
                .in_op(&format!("write column segment {name:?}"))?;
        }
        self.store.flush().in_op("flush column segments")?;
        Ok(())
    }

    fn preload_all(&self) {
        for t in self.shape.types().ids() {
            let _ = self.column(t);
        }
    }

    /// Drop every cached column. Heap columns free their arrays; mapped
    /// columns unmap once the last outstanding reader drops its `Arc`.
    /// They reload lazily — the memory knob for long-lived documents
    /// serving occasional queries.
    pub fn evict_columns(&self) {
        self.columns.write().unwrap().clear();
        self.plan_cache.write().unwrap().clear();
    }

    /// Bytes currently held by cached columns, split by backing (heap
    /// vs memory-mapped).
    pub fn column_bytes(&self) -> ColumnBytes {
        let map = self.columns.read().unwrap();
        let mut out = ColumnBytes::default();
        for c in map.values() {
            out.heap += c.heap_bytes();
            out.mapped += c.mapped_bytes();
        }
        out
    }

    /// Persisted column segments that failed validation on this handle
    /// and fell back to a lazy rebuild, as `"segment: reason"` lines.
    /// Empty in healthy operation.
    pub fn segment_fallbacks(&self) -> Vec<String> {
        self.fallbacks.lock().unwrap().clone()
    }

    /// All instances of a type, in document order, with their direct
    /// text. Materializes owned pairs from the column;
    /// [`ShreddedDoc::column`] is the zero-copy variant.
    pub fn scan_type(&self, t: TypeId) -> Vec<(Dewey, String)> {
        let col = self.column(t);
        (0..col.len())
            .map(|i| (col.dewey(i), col.text(i).to_string()))
            .collect()
    }

    /// Exact `typeDistance` (Def. 2): the minimum tree distance over all
    /// instance pairs, found by scanning candidate least-common-ancestor
    /// levels from the deepest shared path prefix upward and checking
    /// *co-occurrence* (two instances sharing a Dewey prefix of that
    /// length) with a sorted-merge over the two columns. Cached per pair.
    pub fn type_distance_exact(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&hit) = self.dist_cache.lock().unwrap().get(&key) {
            return hit;
        }
        let result = self.compute_distance(key.0, key.1);
        self.dist_cache.lock().unwrap().insert(key, result);
        result
    }

    fn compute_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let types = self.shape.types();
        if self.instance_count(a) == 0 || self.instance_count(b) == 0 {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let la = types.dewey_len(a);
        let lb = types.dewey_len(b);
        let k = types.common_prefix_len(a, b);
        let ca = self.column(a);
        let cb = self.column(b);
        for level in (1..=k).rev() {
            if co_occur_columns(&ca, &cb, level) {
                return Some(la + lb - 2 * level);
            }
        }
        None
    }

    /// The closest join (§VII), zero-copy: instances of `child_type`
    /// closest to the given `parent` instance, as the child column plus
    /// the row range agreeing on the first
    /// `L = (dewey(parent) + dewey(child) − typeDistance)/2` components.
    /// Two binary searches on the column; `None` when the types are
    /// unrelated in the data.
    pub fn closest_group(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Range<usize>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        debug_assert_eq!(parent.len(), self.shape.types().dewey_len(parent_type));
        let range = col.prefix_range(&parent.components()[..l.min(parent.len())]);
        Some((col, range))
    }

    /// The cached plan for a closest join of `child_type` instances
    /// under `parent_type` instances: the join prefix length
    /// `L = (dewey(parent) + dewey(child) − typeDistance)/2` and the
    /// child column. Computed once per pair; every later probe is one
    /// map lookup.
    fn join_plan(
        &self,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(usize, Arc<TypeColumn>)> {
        if let Some(hit) = self
            .plan_cache
            .read()
            .unwrap()
            .get(&(parent_type, child_type))
        {
            return hit.clone();
        }
        let plan = self.type_distance_exact(parent_type, child_type).map(|d| {
            let types = self.shape.types();
            let lp = types.dewey_len(parent_type);
            let lc = types.dewey_len(child_type);
            ((lp + lc).saturating_sub(d) / 2, self.column(child_type))
        });
        self.plan_cache
            .write()
            .unwrap()
            .insert((parent_type, child_type), plan.clone());
        plan
    }

    /// Batched closest join for a **document-ordered** parent batch:
    /// one plan lookup and one forward gallop pass over the child
    /// column resolve every parent's group
    /// ([`TypeColumn::prefix_ranges`]), instead of one independent
    /// binary search per parent. Returns the child column and one row
    /// range per parent, elementwise equal to
    /// [`ShreddedDoc::closest_group`] on each parent; `None` when the
    /// two types are unrelated in the data.
    pub fn closest_children_batch(
        &self,
        parents: &[Dewey],
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Vec<Range<usize>>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        let ranges = col.prefix_ranges(parents.iter().map(|p| &p.components()[..l.min(p.len())]));
        Some((col, ranges))
    }

    /// [`ShreddedDoc::closest_children_batch`] over a row range of an
    /// already-loaded parent column — the renderer's form: the parents
    /// are the root instances of one top-level partition, already
    /// document-ordered by column construction, and no Dewey objects
    /// are materialized.
    pub fn closest_group_batch(
        &self,
        parent_col: &TypeColumn,
        rows: Range<usize>,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Vec<Range<usize>>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        let width = parent_col.width();
        let ranges = col.prefix_ranges(rows.map(|i| {
            let row = parent_col.components(i);
            &row[..l.min(width)]
        }));
        Some((col, ranges))
    }

    /// The closest join, materialized ([`ShreddedDoc::closest_group`]
    /// is the zero-copy variant the renderer uses).
    pub fn closest_children(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Vec<(Dewey, String)> {
        match self.closest_group(parent, parent_type, child_type) {
            Some((col, range)) => range
                .map(|i| (col.dewey(i), col.text(i).to_string()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// A streaming sort-merge cursor over the closest join (§VII's
    /// pipelined implementation): callers ask for the closest
    /// `child_type` instances of successive parent instances *in
    /// document order*, and the cursor advances monotonically through
    /// the child column — never revisiting rows before the last group.
    /// Returns `None` when the two types are unrelated in the data.
    pub fn closest_cursor(&self, parent_type: TypeId, child_type: TypeId) -> Option<ClosestCursor> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        Some(ClosestCursor {
            col,
            prefix_len: l,
            pos: 0,
            group: 0..0,
            group_prefix: Vec::new(),
            has_group: false,
        })
    }

    /// Does the parent instance have at least one closest `child_type`
    /// instance? (Existence check for RESTRICT filters.) A pure
    /// prefix-range probe — nothing is materialized.
    pub fn has_closest_child(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> bool {
        self.closest_group(parent, parent_type, child_type)
            .is_some_and(|(_, range)| !range.is_empty())
    }

    // ---- B+tree reference implementations ----
    //
    // The seed's storage-backed operations, kept verbatim in behaviour:
    // the ablation benchmark's "naive" strategy runs on them, and the
    // columnar-equivalence property tests compare against them.

    /// `typeDistance` computed through B+tree key scans, bypassing the
    /// column cache (and the distance cache — each call rescans).
    pub fn type_distance_btree(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let types = self.shape.types();
        if self.instance_count(a) == 0 || self.instance_count(b) == 0 {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let la = types.dewey_len(a);
        let lb = types.dewey_len(b);
        let k = types.common_prefix_len(a, b);
        for level in (1..=k).rev() {
            if self.co_occur_btree(a, b, level) {
                return Some(la + lb - 2 * level);
            }
        }
        None
    }

    /// Do some instance of `a` and some instance of `b` share a Dewey
    /// prefix of `level` components? Sorted-merge over the two type
    /// sequences comparing `level × 4` key bytes, borrowed straight from
    /// the iterator's keys (keys only — values are never materialized).
    fn co_occur_btree(&self, a: TypeId, b: TypeId, level: usize) -> bool {
        let plen = level * 4;
        let mut ia = self.typeseq.scan_prefix(&a.0.to_be_bytes());
        let mut ib = self.typeseq.scan_prefix(&b.0.to_be_bytes());
        let mut ka = ia.next_key().unwrap_or(None);
        let mut kb = ib.next_key().unwrap_or(None);
        while let (Some(x), Some(y)) = (&ka, &kb) {
            // Skip the 4-byte type prefix; compare Dewey bytes in place.
            let px = &x[4..(4 + plen).min(x.len())];
            let py = &y[4..(4 + plen).min(y.len())];
            match px.cmp(py) {
                std::cmp::Ordering::Equal => {
                    // Same prefix — but for an ancestor/descendant pair
                    // the prefix must be fully present in both.
                    if px.len() == plen && py.len() == plen {
                        return true;
                    }
                    // One of the keys is shorter than the level: advance it.
                    if px.len() < plen {
                        ka = ia.next_key().unwrap_or(None);
                    } else {
                        kb = ib.next_key().unwrap_or(None);
                    }
                }
                std::cmp::Ordering::Less => ka = ia.next_key().unwrap_or(None),
                std::cmp::Ordering::Greater => kb = ib.next_key().unwrap_or(None),
            }
        }
        false
    }

    /// The closest join through one B+tree prefix probe — the seed hot
    /// path, kept for the ablation benchmark (`pipelined: false`) and
    /// the columnar equivalence property tests. The join level still
    /// comes from the (cached) exact type distance, so the comparison
    /// isolates probe cost.
    pub fn closest_children_btree(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Vec<(Dewey, String)> {
        let Some(d) = self.type_distance_exact(parent_type, child_type) else {
            return Vec::new();
        };
        let types = self.shape.types();
        let lp = types.dewey_len(parent_type);
        let lc = types.dewey_len(child_type);
        debug_assert_eq!(parent.len(), lp);
        let l = (lp + lc).saturating_sub(d) / 2;
        let prefix = parent.prefix(l);
        let mut key = Vec::with_capacity(4 + prefix.len() * 4);
        key.extend_from_slice(&child_type.0.to_be_bytes());
        key.extend_from_slice(&prefix.encode());
        self.typeseq
            .scan_prefix(&key)
            .filter_map(|(k, v)| {
                let dewey = Dewey::decode(k.get(4..)?)?;
                let text = String::from_utf8(v).ok()?;
                Some((dewey, text))
            })
            .collect()
    }

    /// [`ShreddedDoc::scan_type`] through the B+tree (reference).
    pub fn scan_type_btree(&self, t: TypeId) -> Vec<(Dewey, String)> {
        self.typeseq
            .scan_prefix(&t.0.to_be_bytes())
            .filter_map(|(k, v)| {
                let dewey = Dewey::decode(k.get(4..)?)?;
                let text = String::from_utf8(v).ok()?;
                Some((dewey, text))
            })
            .collect()
    }
}

/// The pipelined closest-join cursor (see
/// [`ShreddedDoc::closest_cursor`]). Requests must come in
/// non-decreasing parent (document) order; the last group is cached so
/// several parents sharing one join prefix all see it. The cursor owns
/// an `Arc` of the child column, so groups are row ranges — nothing is
/// copied per parent.
pub struct ClosestCursor {
    col: Arc<TypeColumn>,
    /// Join prefix length, in components.
    prefix_len: usize,
    /// First row not yet grouped (rows before this never match again).
    pos: usize,
    group: Range<usize>,
    group_prefix: Vec<u32>,
    has_group: bool,
}

impl ClosestCursor {
    /// The child column the returned row ranges index into.
    pub fn column(&self) -> &Arc<TypeColumn> {
        &self.col
    }

    /// Row range of the closest children of `parent`. Parents must be
    /// presented in non-decreasing document order.
    pub fn group_for(&mut self, parent: &Dewey) -> Range<usize> {
        let p = self.prefix_len.min(parent.len());
        let want = &parent.components()[..p];
        if self.has_group && self.group_prefix == want {
            return self.group.clone();
        }
        let range = self.col.prefix_range_from(self.pos, want);
        self.pos = range.end;
        self.group = range.clone();
        self.group_prefix.clear();
        self.group_prefix.extend_from_slice(want);
        self.has_group = true;
        range
    }
}

impl DistOracle for ShreddedDoc {
    fn type_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        self.type_distance_exact(a, b)
    }
}

/// An immutable, epoch-versioned view of a [`ShreddedDoc`] — the unit
/// of snapshot isolation. Obtained from [`ShreddedDoc::snapshot`];
/// cheap to clone (`Arc`), safe to share across threads, and stable
/// under concurrent mutation of the document that published it: every
/// probe answers from the state at the snapshot's epoch.
///
/// A snapshot freezes the adorned shape and the per-type generations
/// at publication, seeds its column/distance/plan caches from the
/// document, and resolves columns it has not seen **lazily** from the
/// store. Lazy resolution is sound because of the single-writer
/// protocol: a mutation first copy-on-writes the pre-mutation column
/// of every type it touches into every live snapshot (so a type this
/// snapshot has *not* resolved is unchanged since its epoch), and the
/// shared `gate` lock excludes a lazy load from the span of a
/// mutation's tree writes (so the load never decodes a torn range).
///
/// Snapshots are not subject to the document's column budget: columns
/// they resolve or get pinned stay alive until the snapshot drops.
pub struct Snapshot {
    pub(in crate::store) epoch: u64,
    shape: Arc<AdornedShape>,
    store: Store,
    typeseq: Tree,
    /// Store-wide shred generation at publication.
    generation: u64,
    /// Per-type generation overrides frozen at publication. For a type
    /// this snapshot may still lazily load, the frozen value equals the
    /// live one (a later mutation would have pinned the column), so
    /// segment fencing validates against the right generation.
    tygens: HashMap<TypeId, u64>,
    use_persisted: bool,
    prefer_mmap: bool,
    pub(in crate::store) columns: RwLock<HashMap<TypeId, Arc<TypeColumn>, FxBuild>>,
    dist_cache: Mutex<HashMap<(TypeId, TypeId), Option<usize>, FxBuild>>,
    #[allow(clippy::type_complexity)]
    plan_cache: RwLock<HashMap<(TypeId, TypeId), Option<(usize, Arc<TypeColumn>)>, FxBuild>>,
    shared: Arc<DocShared>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("types", &self.shape.types().len())
            .field("resolved", &self.columns.read().unwrap().len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The adorned shape at the snapshot's epoch.
    pub fn shape(&self) -> &AdornedShape {
        &self.shape
    }

    /// The type table at the snapshot's epoch.
    pub fn types(&self) -> &TypeTable {
        self.shape.types()
    }

    /// Number of instances of a type at the snapshot's epoch.
    pub fn instance_count(&self, t: TypeId) -> u64 {
        self.shape.instance_count(t)
    }

    /// Footprint of the columns this snapshot holds resolved (see
    /// [`ShreddedDoc::column_bytes`]); the engine uses the delta across
    /// a query as the "columns this query faulted in" stat.
    pub fn column_bytes(&self) -> ColumnBytes {
        let map = self.columns.read().unwrap();
        let mut out = ColumnBytes::default();
        for c in map.values() {
            out.heap += c.heap_bytes();
            out.mapped += c.mapped_bytes();
        }
        out
    }

    /// The [`TypeColumn`] of `t` as of this snapshot's epoch: the
    /// pinned `Arc` when the type was resolved at publication or by a
    /// later writer pin, otherwise loaded from the store under the
    /// writer-exclusion gate and cached on the snapshot.
    pub fn column(&self, t: TypeId) -> Arc<TypeColumn> {
        if let Some(col) = self.columns.read().unwrap().get(&t) {
            return Arc::clone(col);
        }
        // Exclude writers for the load's duration, then re-check: a
        // mutation that ran while we waited for the gate has pinned the
        // pre-state of every type it touched into this snapshot.
        let _gate = self.shared.gate.read().unwrap();
        if let Some(col) = self.columns.read().unwrap().get(&t) {
            return Arc::clone(col);
        }
        // Unresolved under the gate ⇒ no mutation has touched `t`
        // since this epoch (cow_pin would have resolved it), so the
        // store's current state of `t` *is* the epoch state.
        debug_assert!(
            self.shared
                .touched
                .lock()
                .unwrap()
                .get(&t)
                .copied()
                .unwrap_or(0)
                <= self.epoch,
            "snapshot lazily loading a type mutated after its epoch"
        );
        let built = Arc::new(self.load_column(t));
        let mut map = self.columns.write().unwrap();
        Arc::clone(map.entry(t).or_insert(built))
    }

    /// The generation a valid persisted segment of `t` must carry,
    /// per the generations frozen at publication.
    fn expected_generation(&self, t: TypeId) -> u64 {
        self.tygens.get(&t).copied().unwrap_or(self.generation)
    }

    fn load_column(&self, t: TypeId) -> TypeColumn {
        let width = self.shape.types().dewey_len(t);
        if self.use_persisted {
            let name = colseg::segment_name(t);
            if let Ok(Some(seg)) = self.store.get_segment(&name, self.prefer_mmap) {
                if let Ok(parsed) = colseg::parse(&seg, width, self.expected_generation(t)) {
                    return TypeColumn::from_segment(seg, parsed);
                }
                // Stale or corrupt segments degrade to the tree
                // rebuild, same as the document path; fallback
                // accounting stays a document-handle concern.
            }
        }
        decode_typeseq_column(&self.typeseq, width, t)
    }

    /// All instances of a type at the snapshot's epoch, in document
    /// order, with their direct text.
    pub fn scan_type(&self, t: TypeId) -> Vec<(Dewey, String)> {
        let col = self.column(t);
        (0..col.len())
            .map(|i| (col.dewey(i), col.text(i).to_string()))
            .collect()
    }

    /// Exact `typeDistance` (Def. 2) over the snapshot's columns.
    /// Cached per pair on the snapshot.
    pub fn type_distance_exact(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&hit) = self.dist_cache.lock().unwrap().get(&key) {
            return hit;
        }
        let result = self.compute_distance(key.0, key.1);
        self.dist_cache.lock().unwrap().insert(key, result);
        result
    }

    fn compute_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let types = self.shape.types();
        if self.instance_count(a) == 0 || self.instance_count(b) == 0 {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let la = types.dewey_len(a);
        let lb = types.dewey_len(b);
        let k = types.common_prefix_len(a, b);
        let ca = self.column(a);
        let cb = self.column(b);
        for level in (1..=k).rev() {
            if co_occur_columns(&ca, &cb, level) {
                return Some(la + lb - 2 * level);
            }
        }
        None
    }

    fn join_plan(
        &self,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(usize, Arc<TypeColumn>)> {
        if let Some(hit) = self
            .plan_cache
            .read()
            .unwrap()
            .get(&(parent_type, child_type))
        {
            return hit.clone();
        }
        let plan = self.type_distance_exact(parent_type, child_type).map(|d| {
            let types = self.shape.types();
            let lp = types.dewey_len(parent_type);
            let lc = types.dewey_len(child_type);
            ((lp + lc).saturating_sub(d) / 2, self.column(child_type))
        });
        self.plan_cache
            .write()
            .unwrap()
            .insert((parent_type, child_type), plan.clone());
        plan
    }

    /// The closest join (§VII), zero-copy, at the snapshot's epoch —
    /// elementwise equal to [`ShreddedDoc::closest_group`] on the
    /// document state the snapshot pinned.
    pub fn closest_group(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Range<usize>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        debug_assert_eq!(parent.len(), self.shape.types().dewey_len(parent_type));
        let range = col.prefix_range(&parent.components()[..l.min(parent.len())]);
        Some((col, range))
    }

    /// Batched closest join over a parent row range — the renderer's
    /// form; see [`ShreddedDoc::closest_group_batch`].
    pub fn closest_group_batch(
        &self,
        parent_col: &TypeColumn,
        rows: Range<usize>,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Vec<Range<usize>>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        let width = parent_col.width();
        let ranges = col.prefix_ranges(rows.map(|i| {
            let row = parent_col.components(i);
            &row[..l.min(width)]
        }));
        Some((col, ranges))
    }

    /// Batched closest join for a document-ordered parent batch; see
    /// [`ShreddedDoc::closest_children_batch`].
    pub fn closest_children_batch(
        &self,
        parents: &[Dewey],
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<(Arc<TypeColumn>, Vec<Range<usize>>)> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        let ranges = col.prefix_ranges(parents.iter().map(|p| &p.components()[..l.min(p.len())]));
        Some((col, ranges))
    }

    /// The closest join, materialized; see
    /// [`ShreddedDoc::closest_children`].
    pub fn closest_children(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Vec<(Dewey, String)> {
        match self.closest_group(parent, parent_type, child_type) {
            Some((col, range)) => range
                .map(|i| (col.dewey(i), col.text(i).to_string()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// A streaming closest-join cursor at the snapshot's epoch; see
    /// [`ShreddedDoc::closest_cursor`].
    pub fn closest_cursor(&self, parent_type: TypeId, child_type: TypeId) -> Option<ClosestCursor> {
        let (l, col) = self.join_plan(parent_type, child_type)?;
        Some(ClosestCursor {
            col,
            prefix_len: l,
            pos: 0,
            group: 0..0,
            group_prefix: Vec::new(),
            has_group: false,
        })
    }

    /// Existence probe for RESTRICT filters; see
    /// [`ShreddedDoc::has_closest_child`].
    pub fn has_closest_child(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> bool {
        self.closest_group(parent, parent_type, child_type)
            .is_some_and(|(_, range)| !range.is_empty())
    }

    /// The B+tree reference join (the ablation path, `pipelined:
    /// false`). The scan runs under the writer-exclusion gate so it
    /// never decodes a torn range, but unlike the columnar paths it
    /// reads the *live* trees: under concurrent mutation its answers
    /// reflect the current document, not the snapshot's epoch. The
    /// engine's query path always uses the pipelined columnar join.
    pub fn closest_children_btree(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Vec<(Dewey, String)> {
        let Some(d) = self.type_distance_exact(parent_type, child_type) else {
            return Vec::new();
        };
        let types = self.shape.types();
        let lp = types.dewey_len(parent_type);
        let lc = types.dewey_len(child_type);
        debug_assert_eq!(parent.len(), lp);
        let l = (lp + lc).saturating_sub(d) / 2;
        let prefix = parent.prefix(l);
        let mut key = Vec::with_capacity(4 + prefix.len() * 4);
        key.extend_from_slice(&child_type.0.to_be_bytes());
        key.extend_from_slice(&prefix.encode());
        let _gate = self.shared.gate.read().unwrap();
        self.typeseq
            .scan_prefix(&key)
            .filter_map(|(k, v)| {
                let dewey = Dewey::decode(k.get(4..)?)?;
                let text = String::from_utf8(v).ok()?;
                Some((dewey, text))
            })
            .collect()
    }
}

impl DistOracle for Snapshot {
    fn type_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        self.type_distance_exact(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    fn shredded(xml: &str) -> ShreddedDoc {
        let store = Store::in_memory();
        ShreddedDoc::shred_str(&store, xml).unwrap()
    }

    fn ty(doc: &ShreddedDoc, dotted: &str) -> TypeId {
        let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
        doc.types()
            .lookup(&path)
            .unwrap_or_else(|| panic!("no type {dotted}"))
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xmorph-shred-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn shred_builds_shape_and_counts() {
        let doc = shredded(FIG1A);
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 2);
        assert_eq!(doc.instance_count(ty(&doc, "data.book.author.name")), 2);
    }

    #[test]
    fn scan_type_in_document_order() {
        let doc = shredded(FIG1A);
        let titles = doc.scan_type(ty(&doc, "data.book.title"));
        assert_eq!(titles.len(), 2);
        assert_eq!(titles[0].0.to_string(), "1.1.1");
        assert_eq!(titles[0].1, "X");
        assert_eq!(titles[1].0.to_string(), "1.2.1");
        assert_eq!(titles[1].1, "Y");
    }

    #[test]
    fn node_text_lookup() {
        let doc = shredded(FIG1A);
        assert_eq!(
            doc.node_text(&"1.1.2.1".parse().unwrap())
                .unwrap()
                .as_deref(),
            Some("Tim")
        );
        assert_eq!(doc.node_text(&"1.9".parse().unwrap()).unwrap(), None);
    }

    #[test]
    fn exact_type_distance() {
        let doc = shredded(FIG1A);
        let title = ty(&doc, "data.book.title");
        let publisher = ty(&doc, "data.book.publisher");
        let pub_name = ty(&doc, "data.book.publisher.name");
        assert_eq!(doc.type_distance_exact(title, publisher), Some(2));
        assert_eq!(doc.type_distance_exact(title, pub_name), Some(3));
        assert_eq!(doc.type_distance_exact(title, title), Some(0));
    }

    #[test]
    fn co_occurrence_failure_detected() {
        // authors and editors never share a book: distance 4, not 2.
        let doc =
            shredded("<data><book><author>a</author></book><book><editor>e</editor></book></data>");
        let author = ty(&doc, "data.book.author");
        let editor = ty(&doc, "data.book.editor");
        assert_eq!(doc.type_distance_exact(author, editor), Some(4));
    }

    #[test]
    fn ancestor_descendant_distance() {
        let doc = shredded(FIG1A);
        let book = ty(&doc, "data.book");
        let pub_name = ty(&doc, "data.book.publisher.name");
        assert_eq!(doc.type_distance_exact(book, pub_name), Some(2));
    }

    #[test]
    fn closest_join_matches_paper_example() {
        // §VII: publisher 1.1.3 joins title 1.1.1 (shared 2-prefix), not
        // 1.2.1.
        let doc = shredded(FIG1A);
        let publisher = ty(&doc, "data.book.publisher");
        let title = ty(&doc, "data.book.title");
        let joined = doc.closest_children(&"1.1.3".parse().unwrap(), publisher, title);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.1");
        assert_eq!(joined[0].1, "X");
    }

    #[test]
    fn closest_join_author_names() {
        // §VII's first join: author nodes pick up their name children.
        let doc = shredded(FIG1A);
        let author = ty(&doc, "data.book.author");
        let name = ty(&doc, "data.book.author.name");
        let joined = doc.closest_children(&"1.1.2".parse().unwrap(), author, name);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.2.1");
    }

    #[test]
    fn closest_join_upward() {
        // Joining from title up to author: distance 2 via the book.
        let doc = shredded(FIG1A);
        let title = ty(&doc, "data.book.title");
        let author = ty(&doc, "data.book.author");
        let joined = doc.closest_children(&"1.1.1".parse().unwrap(), title, author);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.2");
    }

    #[test]
    fn attributes_are_stored_vertices() {
        let store = Store::in_memory();
        let doc =
            ShreddedDoc::shred_str(&store, r#"<d><a id="7">x</a><a id="8">y</a></d>"#).unwrap();
        let at = ty(&doc, "d.a.@id");
        let vals = doc.scan_type(at);
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].1, "7");
        assert_eq!(vals[1].1, "8");
    }

    #[test]
    fn reopen_from_store() {
        let store = Store::in_memory();
        {
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        }
        let doc = ShreddedDoc::open(&store).unwrap();
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 2);
        let titles = doc.scan_type(ty(&doc, "data.book.title"));
        assert_eq!(titles.len(), 2);
    }

    #[test]
    fn has_closest_child_existence() {
        let doc = shredded(
            "<d><book><award>w</award><title>A</title></book><book><title>B</title></book></d>",
        );
        let book = ty(&doc, "d.book");
        let award = ty(&doc, "d.book.award");
        assert!(doc.has_closest_child(&"1.1".parse().unwrap(), book, award));
        assert!(!doc.has_closest_child(&"1.2".parse().unwrap(), book, award));
    }

    #[test]
    fn mixed_text_is_trimmed_direct_text() {
        let doc = shredded("<d><a> hi <b>skip</b></a></d>");
        let a = ty(&doc, "d.a");
        let scans = doc.scan_type(a);
        assert_eq!(scans[0].1, "hi");
    }

    // ---- columnar read path ----

    #[test]
    fn column_is_built_once_and_shared() {
        let doc = shredded(FIG1A);
        let t = ty(&doc, "data.book.title");
        let c1 = doc.column(t);
        let c2 = doc.column(t);
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(c1.len(), 2);
        assert_eq!(c1.width(), 3);
        assert_eq!(c1.text(0), "X");
        assert_eq!(c1.dewey(1).to_string(), "1.2.1");
    }

    #[test]
    fn column_eviction_and_memory_accounting() {
        let doc = shredded(FIG1A);
        assert_eq!(doc.column_bytes().total(), 0);
        doc.preload_all();
        let bytes = doc.column_bytes();
        assert!(bytes.heap > 0);
        assert_eq!(bytes.mapped, 0, "in-memory store cannot map");
        doc.evict_columns();
        assert_eq!(doc.column_bytes().total(), 0);
        // Columns rebuild after eviction.
        assert_eq!(doc.scan_type(ty(&doc, "data.book")).len(), 2);
    }

    #[test]
    fn prefix_range_binary_search() {
        let doc = shredded(FIG1A);
        let title = doc.column(ty(&doc, "data.book.title"));
        assert_eq!(title.prefix_range(&[1]), 0..2);
        assert_eq!(title.prefix_range(&[1, 1]), 0..1);
        assert_eq!(title.prefix_range(&[1, 2]), 1..2);
        assert_eq!(title.prefix_range(&[1, 3]), 2..2);
        assert_eq!(title.prefix_range(&[2]), 2..2);
    }

    #[test]
    fn columnar_matches_btree_reference() {
        let doc = shredded(FIG1A);
        let types: Vec<TypeId> = doc.types().ids().collect();
        for &t in &types {
            assert_eq!(doc.scan_type(t), doc.scan_type_btree(t), "scan {t:?}");
        }
        for &a in &types {
            for &b in &types {
                assert_eq!(
                    doc.type_distance_exact(a, b),
                    doc.type_distance_btree(a, b),
                    "distance {a:?} {b:?}"
                );
                for (parent, _) in doc.scan_type(a) {
                    assert_eq!(
                        doc.closest_children(&parent, a, b),
                        doc.closest_children_btree(&parent, a, b),
                        "join {parent} {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cursor_groups_match_direct_joins() {
        let doc = shredded(FIG1A);
        let publisher = ty(&doc, "data.book.publisher");
        let title = ty(&doc, "data.book.title");
        let mut cursor = doc.closest_cursor(publisher, title).unwrap();
        for (parent, _) in doc.scan_type(publisher) {
            let range = cursor.group_for(&parent);
            let col = cursor.column().clone();
            let got: Vec<(Dewey, String)> = range
                .map(|i| (col.dewey(i), col.text(i).to_string()))
                .collect();
            assert_eq!(got, doc.closest_children(&parent, publisher, title));
        }
    }

    #[test]
    fn batched_groups_match_direct_joins() {
        let doc = shredded(FIG1A);
        let types: Vec<TypeId> = doc.types().ids().collect();
        for &a in &types {
            let parents: Vec<Dewey> = doc.scan_type(a).into_iter().map(|(d, _)| d).collect();
            for &b in &types {
                let batch = doc.closest_children_batch(&parents, a, b);
                match batch {
                    None => {
                        for p in &parents {
                            assert!(doc.closest_group(p, a, b).is_none());
                        }
                    }
                    Some((col, ranges)) => {
                        assert_eq!(ranges.len(), parents.len());
                        for (p, r) in parents.iter().zip(&ranges) {
                            let (scol, sr) = doc.closest_group(p, a, b).unwrap();
                            assert_eq!(*r, sr, "batch group for {p} under {a:?}->{b:?}");
                            assert_eq!(*col, *scol);
                        }
                        // Row-range form agrees with the Dewey form.
                        let pcol = doc.column(a);
                        let (_, rranges) =
                            doc.closest_group_batch(&pcol, 0..pcol.len(), a, b).unwrap();
                        assert_eq!(rranges, ranges);
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_ranges_handles_repeats_and_empty_groups() {
        let doc = shredded(FIG1A);
        let title = doc.column(ty(&doc, "data.book.title"));
        let probes: Vec<&[u32]> = vec![&[1, 1], &[1, 1], &[1, 2], &[1, 3], &[2]];
        let got = title.prefix_ranges(probes.iter().copied());
        let want: Vec<Range<usize>> = probes.iter().map(|p| title.prefix_range(p)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cmp_prefix_matches_slice_ordering_on_wide_rows() {
        // Exercise both the 8-wide chunked path and the scalar tail.
        let base: Vec<u32> = (0..19).collect();
        for flip in 0..19 {
            for delta in [-1i64, 0, 1] {
                let mut row = base.clone();
                row[flip] = (i64::from(row[flip]) + delta).max(0) as u32;
                for plen in [0usize, 3, 8, 11, 16, 19] {
                    let pre = &base[..plen];
                    assert_eq!(
                        cmp_prefix(&row, pre),
                        row[..plen].cmp(pre),
                        "flip {flip} delta {delta} plen {plen}"
                    );
                }
            }
        }
    }

    #[test]
    fn gallop_partition_matches_binary_partition() {
        // One-component rows 0,0,1,1,1,2,5,5,9.
        let comps: Vec<u32> = vec![0, 0, 1, 1, 1, 2, 5, 5, 9];
        let n = comps.len();
        for target in 0..=10u32 {
            for from in 0..=n {
                let pred = |row: &[u32]| row[0] < target;
                let want = binary_partition(&comps, 1, from, n, pred).max(from);
                assert_eq!(
                    gallop_partition(&comps, 1, from, n, pred),
                    want,
                    "target {target} from {from}"
                );
            }
        }
    }

    #[test]
    fn bulk_and_incremental_shreds_agree() {
        let store_inc = Store::in_memory();
        let incremental = ShreddedDoc::shred_str_with(
            &store_inc,
            FIG1A,
            &ShredOptions::builder().bulk_load(false),
        )
        .unwrap();
        let store_bulk = Store::in_memory();
        let bulk = ShreddedDoc::shred_str(&store_bulk, FIG1A).unwrap();
        let types: Vec<TypeId> = bulk.types().ids().collect();
        assert_eq!(
            incremental.types().len(),
            bulk.types().len(),
            "same type table"
        );
        for &t in &types {
            assert_eq!(incremental.scan_type(t), bulk.scan_type(t));
        }
        assert_eq!(
            incremental.node_text(&"1.1.2.1".parse().unwrap()).unwrap(),
            bulk.node_text(&"1.1.2.1".parse().unwrap()).unwrap()
        );
    }

    #[test]
    fn eager_columns_option_preloads() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str_with(
            &store,
            FIG1A,
            &ShredOptions::builder().eager_columns(true),
        )
        .unwrap();
        assert!(doc.column_bytes().total() > 0);
    }

    // ---- persisted column segments ----

    #[test]
    fn cold_reopen_serves_persisted_columns() {
        let path = temp_path("persist-basic.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let t = ty(&doc, "data.book.title");
        let col = doc.column(t);
        // Unix file-backed stores serve the segment via mmap.
        assert_eq!(col.is_mapped(), store.supports_mmap());
        assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        assert!(doc.segment_fallbacks().is_empty(), "no fallback expected");
        if col.is_mapped() {
            assert!(doc.column_bytes().mapped > 0);
        }
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_off_copies_to_heap() {
        let path = temp_path("persist-no-mmap.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open_with(&store, &OpenOptions::builder().mmap(false)).unwrap();
        let t = ty(&doc, "data.book.title");
        let col = doc.column(t);
        assert!(!col.is_mapped());
        assert_eq!(doc.column_bytes().mapped, 0);
        assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reshred_invalidates_old_segments() {
        // Shred twice into the same store; the second shred's columns
        // must win even where a first-generation segment still exists.
        let path = temp_path("persist-reshred.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        {
            // Second shred with persistence off: old segments go stale
            // (generation bump) and must not serve the new data.
            let store = Store::open(&path).unwrap();
            ShreddedDoc::shred_str_with(
                &store,
                FIG1A,
                &ShredOptions::builder().persist_columns(false),
            )
            .unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let t = ty(&doc, "data.book.title");
        let col = doc.column(t);
        assert!(!col.is_mapped(), "stale segment must not be served");
        assert!(
            doc.segment_fallbacks()
                .iter()
                .any(|f| f.contains("stale generation")),
            "fallback should name the stale segment: {:?}",
            doc.segment_fallbacks()
        );
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persisted_columns_off_rebuilds() {
        let path = temp_path("persist-off.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open_with(&store, &OpenOptions::builder().persisted_columns(false))
            .unwrap();
        let t = ty(&doc, "data.book.title");
        assert!(!doc.column(t).is_mapped());
        assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preload_paths_loads_named_types_only() {
        let path = temp_path("persist-preload.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open_with(
            &store,
            &OpenOptions::builder().preload(Preload::Paths(vec![
                "data.book.title".to_string(),
                "no.such.type".to_string(),
            ])),
        )
        .unwrap();
        assert_eq!(doc.columns.read().unwrap().len(), 1);
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_budget_evicts() {
        // A one-byte budget: each new column evicts the rest. Budget is
        // an open-time knob, so shred to a file and reopen.
        let path = temp_path("budget.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open_with(&store, &OpenOptions::builder().column_budget(1)).unwrap();
        for t in doc.types().ids().collect::<Vec<_>>() {
            let _ = doc.column(t);
            assert!(doc.columns.read().unwrap().len() <= 1);
        }
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_segment_falls_back_cleanly() {
        let path = temp_path("persist-corrupt.db");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            store.close().unwrap();
        }
        // Flip a byte inside every persisted payload: segments start
        // after the fixed header with the magic, so corrupt by locating
        // each magic and damaging a byte far past the header.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let magic = crate::store::colseg::COLSEG_MAGIC_V2;
            let positions: Vec<usize> = bytes
                .windows(magic.len())
                .enumerate()
                .filter(|(_, w)| w == magic)
                .map(|(i, _)| i)
                .collect();
            assert!(!positions.is_empty(), "persisted segments present");
            for p in positions {
                let target = p + crate::store::colseg::COLSEG_HEADER;
                if target < bytes.len() {
                    bytes[target] ^= 0xff;
                }
            }
            std::fs::write(&path, &bytes).unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let t = ty(&doc, "data.book.title");
        // Bytes still correct (rebuilt), fallback recorded.
        assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        assert!(
            !doc.segment_fallbacks().is_empty(),
            "corruption should be recorded"
        );
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_memory_shred_persists_nothing() {
        let store = Store::in_memory();
        ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        assert!(store.segment_names().unwrap().is_empty());
    }

    // ---- snapshot isolation ----

    #[test]
    fn snapshot_is_cached_until_a_mutation_publishes_a_new_epoch() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let s1 = doc.snapshot();
        let s2 = doc.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "same epoch → same published Arc");
        assert_eq!(s1.epoch(), 0);
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        let s3 = doc.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert!(s3.epoch() > s1.epoch());
    }

    #[test]
    fn snapshot_pins_pre_mutation_state() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        let author = ty(&doc, "data.book.author");
        let snap = doc.snapshot();
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        doc.delete_subtree(&"1.2.2".parse().unwrap()).unwrap();
        doc.insert_subtree(&"1.1".parse().unwrap(), "<award>w</award>")
            .unwrap();
        // The snapshot still reads epoch-0 everywhere, including types
        // it had not resolved when the mutations ran (cow_pin).
        let texts: Vec<String> = snap.scan_type(title).into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["X", "Y"]);
        assert_eq!(snap.instance_count(author), 2);
        assert!(snap.has_closest_child(&"1.2".parse().unwrap(), ty(&doc, "data.book"), author));
        assert!(snap
            .shape()
            .types()
            .lookup(&["data".into(), "book".into(), "award".into()])
            .is_none());
        // The document itself sees the post-mutation state.
        assert_eq!(doc.instance_count(author), 1);
        let now: Vec<String> = doc.scan_type(title).into_iter().map(|(_, t)| t).collect();
        assert_eq!(now, ["Z", "Y"]);
    }

    #[test]
    fn snapshot_lazily_loads_untouched_types_after_mutations() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let pub_name = ty(&doc, "data.book.publisher.name");
        let snap = doc.snapshot();
        // Mutate a disjoint type: publisher.name is neither pinned nor
        // resolved in the snapshot, so this read exercises the lazy
        // load path against the live trees — sound because the type
        // was never touched past the snapshot's epoch.
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        let texts: Vec<String> = snap
            .scan_type(pub_name)
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(texts, ["W", "V"]);
    }

    #[test]
    fn snapshot_joins_match_document_joins_at_same_epoch() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        doc.insert_subtree(&"1.2".parse().unwrap(), "<award>prize</award>")
            .unwrap();
        let snap = doc.snapshot();
        for a in doc.types().ids().collect::<Vec<_>>() {
            for b in doc.types().ids().collect::<Vec<_>>() {
                assert_eq!(
                    snap.type_distance_exact(a, b),
                    doc.type_distance_exact(a, b),
                    "distance {a:?}->{b:?}"
                );
                let parents: Vec<Dewey> = doc.scan_type(a).into_iter().map(|(p, _)| p).collect();
                for p in &parents {
                    assert_eq!(
                        snap.closest_children(p, a, b),
                        doc.closest_children(p, a, b),
                        "join {p} {a:?}->{b:?}"
                    );
                }
                let snap_batch = snap.closest_children_batch(&parents, a, b).map(|(_, r)| r);
                let doc_batch = doc.closest_children_batch(&parents, a, b).map(|(_, r)| r);
                assert_eq!(snap_batch, doc_batch, "batch {a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn republication_carries_forward_unmoved_columns() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        let pub_name = ty(&doc, "data.book.publisher.name");
        let s1 = doc.snapshot();
        let warm = s1.column(pub_name); // resolved on the old snapshot only
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        let s2 = doc.snapshot();
        // publisher.name didn't move: the new snapshot inherits the
        // very Arc the old one resolved. title moved: it must not.
        assert!(Arc::ptr_eq(&warm, &s2.column(pub_name)));
        let texts: Vec<String> = s2.scan_type(title).into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["Z", "Y"]);
        assert_eq!(
            s1.scan_type(title)
                .into_iter()
                .map(|(_, t)| t)
                .collect::<Vec<_>>(),
            ["X", "Y"]
        );
    }

    #[test]
    fn scoped_cache_invalidation_keeps_disjoint_pairs() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        let book = ty(&doc, "data.book");
        let pub_name = ty(&doc, "data.book.publisher.name");
        let publisher = ty(&doc, "data.book.publisher");
        // Warm both pairs, then mutate only the title.
        assert_eq!(doc.type_distance_exact(book, title), Some(1));
        assert_eq!(doc.type_distance_exact(publisher, pub_name), Some(1));
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        // Disjoint pair survives; pairs touching `title` recompute and
        // still agree with a fresh document.
        assert_eq!(doc.type_distance_exact(publisher, pub_name), Some(1));
        assert_eq!(doc.type_distance_exact(book, title), Some(1));
        assert!(doc.has_closest_child(&"1.1".parse().unwrap(), book, title));
    }

    #[test]
    fn snapshot_survives_document_drop() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        doc.update_text(&"1.1.1".parse().unwrap(), "Z").unwrap();
        let snap = doc.snapshot();
        drop(doc);
        let texts: Vec<String> = snap.scan_type(title).into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["Z", "Y"]);
    }

    /// A document large enough that a 64 KiB run budget forces several
    /// spilled runs per stream.
    fn spill_sized_xml() -> String {
        let mut xml = String::from("<lib>");
        for i in 0..2000 {
            xml.push_str(&format!(
                "<book id=\"b{i}\"><title>T{i}</title><author><name>A{}</name></author></book>",
                i % 7
            ));
        }
        xml.push_str("</lib>");
        xml
    }

    #[test]
    fn streaming_shred_matches_in_memory() {
        let xml = spill_sized_xml();
        let mem = shredded(&xml);
        let store = Store::in_memory();
        let opts = ShredOptions::builder().memory_budget(64 * 1024);
        let st = ShreddedDoc::shred_str_with(&store, &xml, &opts).unwrap();

        let dump = |d: &ShreddedDoc| {
            (
                d.nodes.scan_prefix(&[]).collect::<Vec<_>>(),
                d.typeseq.scan_prefix(&[]).collect::<Vec<_>>(),
            )
        };
        assert_eq!(dump(&mem), dump(&st));
        let title = ty(&mem, "lib.book.title");
        assert_eq!(mem.scan_type(title), st.scan_type(title));
        assert_eq!(mem.shape().to_bytes(), st.shape().to_bytes());
        // The spilled runs are gone once the shred completes.
        assert!(store
            .segment_entries()
            .unwrap()
            .iter()
            .all(|(n, _)| !n.starts_with(RUN_SEG_PREFIX)));
    }

    #[test]
    fn streaming_shred_persists_identical_segments() {
        let xml = spill_sized_xml();
        let p1 = temp_path("stream-mem.db");
        let p2 = temp_path("stream-ext.db");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        {
            let s1 = Store::open(&p1).unwrap();
            ShreddedDoc::shred_str(&s1, &xml).unwrap();
            let s2 = Store::open(&p2).unwrap();
            let opts = ShredOptions::builder().memory_budget(64 * 1024);
            ShreddedDoc::shred_str_with(&s2, &xml, &opts).unwrap();
            for (name, _) in s1.segment_entries().unwrap() {
                let a = s1.get_segment(&name, false).unwrap().unwrap();
                let b = s2
                    .get_segment(&name, false)
                    .unwrap()
                    .unwrap_or_else(|| panic!("streaming shred missing segment {name}"));
                assert_eq!(&a[..], &b[..], "segment {name} differs");
            }
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn shred_reader_and_file_match_shred_str() {
        let mem = shredded(FIG1A);
        let title = ty(&mem, "data.book.title");

        let s1 = Store::in_memory();
        let d1 = ShreddedDoc::shred_reader(&s1, FIG1A.as_bytes()).unwrap();
        assert_eq!(mem.scan_type(title), d1.scan_type(title));

        let p = temp_path("reader-src.xml");
        std::fs::write(&p, FIG1A).unwrap();
        let s2 = Store::in_memory();
        let d2 = ShreddedDoc::shred_file(&s2, &p).unwrap();
        assert_eq!(mem.scan_type(title), d2.scan_type(title));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn snapshot_pins_are_accounted() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        assert_eq!(doc.snapshot_pinned_bytes(), 0);

        // A column the snapshot resolves on its own is resident beyond
        // the document cache and must show up in the accounting.
        let snap = doc.snapshot();
        let col = snap.column(title);
        let bytes = col.heap_bytes() + col.mapped_bytes();
        assert!(bytes > 0);
        assert_eq!(doc.snapshot_pinned_bytes(), bytes);
        drop(col);
        drop(snap);

        // Columns whose `Arc` the snapshot shares with the cache are
        // already counted by `column_bytes` and must not double-count.
        let store2 = Store::in_memory();
        let doc2 = ShreddedDoc::shred_str(&store2, FIG1A).unwrap();
        let t2 = ty(&doc2, "data.book.title");
        let _ = doc2.column(t2);
        let snap2 = doc2.snapshot();
        let _ = snap2.column(t2);
        assert_eq!(doc2.snapshot_pinned_bytes(), 0);
    }

    #[test]
    fn column_budget_counts_snapshot_pins_as_spent() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let title = ty(&doc, "data.book.title");
        let name = ty(&doc, "data.book.author.name");
        let snap = doc.snapshot();
        let pinned = {
            let c = snap.column(title);
            c.heap_bytes() + c.mapped_bytes()
        };
        assert!(pinned > 0);
        // The snapshot has already spent the whole budget, so the
        // cache shrinks to the single entry eviction never drops —
        // the column just touched.
        doc.set_column_budget(Some(pinned));
        let _ = doc.column(title);
        let _ = doc.column(name);
        let cached: Vec<TypeId> = doc.columns.read().unwrap().keys().copied().collect();
        assert_eq!(cached, vec![name]);
    }
}

//! The XMorph data store (paper Fig. 8): the shredder, the shredded
//! document tables over `xmorph-pagestore`, and the persisted
//! column-segment format.

pub(crate) mod colseg;
pub mod mutate;
pub mod shredded;

pub use mutate::MaintenanceStats;
pub use shredded::ShreddedDoc;

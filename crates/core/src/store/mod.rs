//! The XMorph data store (paper Fig. 8): the shredder and the shredded
//! document tables over `xmorph-pagestore`.

pub mod shredded;

pub use shredded::ShreddedDoc;

//! The document mutation write path: in-place subtree insertion,
//! subtree deletion, and text updates on a [`ShreddedDoc`], with
//! incremental maintenance of every derived structure — the `nodes`
//! and `typeseq` trees, the adorned shape, and the per-type columns.
//!
//! The seed store was write-once: the only way to change a document
//! was a full re-shred, which bumped the store-wide column generation
//! (`meta["colgen"]`) and invalidated *every* persisted column
//! segment. This module pulls those assumptions apart:
//!
//! * **Dewey allocation is gap-aware.** Appending a child takes the
//!   next free ordinal. Inserting *before* a sibling takes the
//!   midpoint of the ordinal gap when one exists (deletes and earlier
//!   renumbers leave gaps), so sibling inserts usually renumber
//!   nothing. Only when the gap is exhausted does the insert fall back
//!   to a **local renumber**: the trailing siblings move to fresh
//!   ordinals strided by [`GAP_STRIDE`] above the current maximum —
//!   seeding the gaps that make the *next* insert in the same place
//!   cheap. Renumbering is local to one parent's child list; ancestors
//!   and the rest of the document keep their labels.
//! * **Column maintenance is per type.** A mutation touches a handful
//!   of types; each touched type gets a fresh *per-type* generation
//!   (`meta["tygen." + id]`) instead of the store-wide bump. A touched
//!   type whose [`TypeColumn`] is cached is updated in place by a
//!   sorted-run merge (document order, `prefix_range` and the
//!   `closest_*` joins stay correct); an uncached one is merely
//!   invalidated — its stale persisted segment is dropped and the
//!   column rebuilds lazily on next touch. The other ~500 types'
//!   columns and segments stay valid against the store-wide
//!   generation.
//! * **Shape maintenance is conservative-exact.** Instance counts are
//!   maintained exactly. Edge cardinalities only ever *widen*: an
//!   insert folds the new parent instance's child counts into each
//!   edge (and drags `min` to 0 for known child types the new instance
//!   lacks); a delete re-counts the affected parent's children of the
//!   deleted type and lowers `min` accordingly. Bounds never tighten
//!   on mutation, so every shape-level theorem that held before a
//!   mutation still holds after it.
//!
//! Mutations take `&mut self`: the borrow checker serializes writers
//! against readers on the same handle. Concurrent readers go through
//! [`Snapshot`] handles (see `ShreddedDoc::snapshot`), and every
//! public mutation here upholds the snapshot protocol: it takes the
//! shared writer gate for the span of its tree writes (excluding
//! snapshot lazy loads from torn ranges), copy-on-write pins the
//! pre-mutation column of every touched type into each live snapshot
//! *before* the first tree write, and bumps the document epoch +
//! per-type touched map when the deltas land. Snapshots already
//! handed out (an `Arc<TypeColumn>`, a [`ClosestCursor`]) keep
//! serving the pre-mutation state; re-acquire them after mutating.
//!
//! [`Snapshot`]: crate::store::shredded::Snapshot
//!
//! ```
//! use xmorph_core::ShreddedDoc;
//! use xmorph_pagestore::Store;
//!
//! let store = Store::in_memory();
//! let mut doc = ShreddedDoc::shred_str(&store, "<d><a>x</a></d>").unwrap();
//! doc.update_text(&"1.1".parse().unwrap(), "y").unwrap();
//! let inserted = doc.insert_subtree(&"1".parse().unwrap(), "<a>z</a>").unwrap();
//! assert_eq!(inserted.to_string(), "1.2");
//! let a = doc.types().lookup(&["d".into(), "a".into()]).unwrap();
//! let texts: Vec<String> = doc.scan_type(a).into_iter().map(|(_, t)| t).collect();
//! assert_eq!(texts, ["y", "z"]);
//! ```
//!
//! [`TypeColumn`]: crate::store::shredded::TypeColumn
//! [`ClosestCursor`]: crate::store::shredded::ClosestCursor

use crate::error::{MorphError, MorphResult, StoreOpExt};
use crate::model::card::{Card, CardMax};
use crate::model::shape::AdornedShape;
use crate::model::types::TypeId;
use crate::store::colseg;
use crate::store::shredded::{
    node_value, parse_node_value, tygen_key, typeseq_key, ShreddedDoc, TypeColumn, META_SHAPE_KEY,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use xmorph_xml::dewey::{decode_components_into, Dewey};
use xmorph_xml::reader::{XmlEvent, XmlReader};

/// Ordinal stride used when an insert-before exhausts its gap and the
/// trailing siblings renumber: consecutive renumbered siblings land
/// `GAP_STRIDE` apart, so the next few inserts in the same spot find
/// midpoints instead of renumbering again.
pub const GAP_STRIDE: u32 = 8;

/// Column-maintenance counters for one [`ShreddedDoc`] handle,
/// reported by [`ShreddedDoc::maintenance_stats`]. The interesting
/// ratio is `column_rebuilds` against the type count: per-type
/// generations keep a small mutation from re-decoding the whole
/// column cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Cached columns updated in place by a sorted-run merge.
    pub merged_columns: u64,
    /// Columns invalidated outright (uncached at mutation time); they
    /// rebuild lazily if and when next touched.
    pub invalidated_columns: u64,
    /// Full column decodes from the `typeseq` tree (cache misses
    /// without a usable persisted segment) since this handle opened.
    pub column_rebuilds: u64,
}

fn mutation_err(message: impl Into<String>) -> MorphError {
    MorphError::Mutation {
        message: message.into(),
    }
}

/// The net row change a mutation makes to one type's column, keyed by
/// Dewey component rows (fixed width per type, so plain lexicographic
/// order *is* document order).
///
/// Deltas accumulate in `ShreddedDoc::pending_deltas` until the column
/// is next read, so a burst of updates pays for one merge, not one per
/// update. Merging is idempotent over a base that already contains the
/// delta (adds replace same-key rows, removes of absent rows are
/// no-ops), which is what makes it safe to re-apply a pending delta
/// over a column freshly rebuilt from the already-mutated `typeseq`.
#[derive(Default)]
pub(in crate::store) struct TypeDelta {
    removed: BTreeSet<Vec<u32>>,
    added: BTreeMap<Vec<u32>, String>,
}

/// Fold a later mutation's delta into an accumulated one: per row key
/// the newest operation wins, so replaying the folded delta equals
/// replaying the two in order.
fn fold_delta(pending: &mut TypeDelta, delta: TypeDelta) {
    for k in delta.removed {
        pending.added.remove(&k);
        pending.removed.insert(k);
    }
    for (k, v) in delta.added {
        pending.removed.remove(&k);
        pending.added.insert(k, v);
    }
}

type Deltas = HashMap<TypeId, TypeDelta>;

fn delta_removed(deltas: &mut Deltas, t: TypeId, comps: Vec<u32>) {
    deltas.entry(t).or_default().removed.insert(comps);
}

fn delta_added(deltas: &mut Deltas, t: TypeId, comps: Vec<u32>, text: String) {
    deltas.entry(t).or_default().added.insert(comps, text);
}

/// Sorted-run merge of a column with a delta: rows stay in document
/// order, removed rows drop out, added rows splice in (an added row
/// with the key of a surviving row replaces it — the text-update
/// case). One linear pass; the result is always heap-backed.
pub(in crate::store) fn merged_column(old: &TypeColumn, delta: &TypeDelta) -> TypeColumn {
    let width = old.width();
    let mut comps: Vec<u32> = Vec::with_capacity(old.len() * width);
    let mut texts = String::new();
    let mut offsets: Vec<u32> = vec![0];
    {
        let mut emit = |row: &[u32], text: &str| {
            debug_assert_eq!(row.len(), width);
            comps.extend_from_slice(row);
            texts.push_str(text);
            offsets.push(texts.len() as u32);
        };
        let mut added = delta.added.iter().peekable();
        for i in 0..old.len() {
            let row = old.components(i);
            while added.peek().is_some_and(|(k, _)| k.as_slice() < row) {
                let (k, text) = added.next().unwrap();
                emit(k, text);
            }
            if added.peek().is_some_and(|(k, _)| k.as_slice() == row) {
                let (k, text) = added.next().unwrap();
                emit(k, text);
                continue;
            }
            if delta.removed.contains(row) {
                continue;
            }
            emit(row, old.text(i));
        }
        for (k, text) in added {
            emit(k, text);
        }
    }
    TypeColumn::from_parts(width, comps, offsets, texts)
}

/// The vertices a fragment shred produces, in shredder order.
type FragmentVertices = Vec<(TypeId, Dewey, String)>;

/// Shred an XML fragment rooted at `root_dewey` whose root element
/// becomes a child of `parent_type`. Returns every vertex (elements
/// and attributes, in the shredder's order) plus the root's type, and
/// maintains the shape as it goes: new types intern, instance counts
/// bump, and the edges *inside* the fragment widen to cover each new
/// parent instance's child counts (including dragging `min` to 0 for
/// known child types a new instance lacks). The edge into the root
/// type itself is the caller's job — it depends on the insertion
/// parent's other children.
fn shred_fragment(
    shape: &mut AdornedShape,
    parent_type: TypeId,
    root_dewey: &Dewey,
    fragment: &str,
) -> MorphResult<(FragmentVertices, TypeId)> {
    struct Frame {
        dewey: Dewey,
        type_id: TypeId,
        next_ordinal: u32,
        text: String,
        child_counts: HashMap<TypeId, u64>,
    }
    let mut reader = XmlReader::new(fragment);
    let mut stack: Vec<Frame> = Vec::new();
    let mut entries: Vec<(TypeId, Dewey, String)> = Vec::new();
    let mut root_type: Option<TypeId> = None;
    loop {
        match reader.next_event()? {
            XmlEvent::StartElement { name, attrs } => {
                let (dewey, enclosing) = match stack.last_mut() {
                    Some(f) => {
                        f.next_ordinal += 1;
                        (f.dewey.child(f.next_ordinal), f.type_id)
                    }
                    None => {
                        if root_type.is_some() {
                            return Err(mutation_err("fragment must have a single root element"));
                        }
                        (root_dewey.clone(), parent_type)
                    }
                };
                let type_id = shape.intern_child_type(enclosing, &name);
                if stack.is_empty() {
                    root_type = Some(type_id);
                }
                shape.add_instances(type_id, 1);
                if let Some(f) = stack.last_mut() {
                    *f.child_counts.entry(type_id).or_insert(0) += 1;
                }
                let mut frame = Frame {
                    dewey,
                    type_id,
                    next_ordinal: 0,
                    text: String::new(),
                    child_counts: HashMap::new(),
                };
                for (aname, avalue) in &attrs {
                    let at = shape.intern_child_type(type_id, &format!("@{aname}"));
                    shape.add_instances(at, 1);
                    frame.next_ordinal += 1;
                    let ad = frame.dewey.child(frame.next_ordinal);
                    entries.push((at, ad, avalue.clone()));
                    *frame.child_counts.entry(at).or_insert(0) += 1;
                }
                stack.push(frame);
            }
            XmlEvent::Text(t) => {
                if let Some(f) = stack.last_mut() {
                    f.text.push_str(&t);
                }
            }
            XmlEvent::EndElement { .. } => {
                let f = stack.pop().expect("balanced events");
                for ct in shape.children(f.type_id).to_vec() {
                    let n = f.child_counts.get(&ct).copied().unwrap_or(0);
                    let old = shape.card(ct);
                    shape.set_card(
                        ct,
                        Card::new(old.min.min(n), old.max.max(CardMax::Finite(n))),
                    );
                }
                entries.push((f.type_id, f.dewey.clone(), f.text.trim().to_string()));
            }
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
            XmlEvent::Eof => break,
        }
    }
    let root_type = root_type.ok_or_else(|| mutation_err("fragment holds no element"))?;
    Ok((entries, root_type))
}

impl ShreddedDoc {
    /// Replace the direct text of the node at `dewey`. The text is
    /// trimmed, matching the shredder. The node's type, label, and
    /// subtree are untouched, so the shape does not change; only the
    /// one type's column is maintained.
    pub fn update_text(&mut self, dewey: &Dewey, text: &str) -> MorphResult<()> {
        let key = dewey.encode();
        let value = self
            .nodes
            .get(&key)
            .in_op("read tree \"nodes\"")?
            .ok_or_else(|| mutation_err(format!("no node {dewey}")))?;
        let (t, _) = parse_node_value(&value).ok_or(MorphError::Internal("corrupt nodes entry"))?;
        let text = text.trim();
        // Snapshot protocol: exclude snapshot lazy loads for the span
        // of the tree writes, and pin the pre-mutation column into
        // every live snapshot before the first write lands.
        let shared = Arc::clone(&self.shared);
        let _gate = shared.gate.write().unwrap();
        self.cow_pin([t]);
        // One logical mutation = one store transaction: both table
        // writes and the per-type maintenance land atomically, and an
        // error path rolls the lot back (the txn guard's Drop).
        let txn = self.store.begin().in_op("begin mutation transaction")?;
        self.nodes
            .insert(&key, &node_value(t, text))
            .in_op("update tree \"nodes\"")?;
        self.typeseq
            .insert(&typeseq_key(t, dewey), text.as_bytes())
            .in_op("update tree \"typeseq\"")?;
        let mut deltas = Deltas::new();
        delta_added(
            &mut deltas,
            t,
            dewey.components().to_vec(),
            text.to_string(),
        );
        self.apply_deltas(deltas)?;
        txn.commit().in_op("commit mutation transaction")
    }

    /// Delete the node at `dewey` and its whole subtree; returns the
    /// number of vertices removed. Sibling labels are left alone — the
    /// ordinal gap this opens is exactly what later inserts use to
    /// avoid renumbering. The edge into the deleted root's type widens
    /// (`min` drops to the affected parent's remaining count, possibly
    /// zero); the document root itself cannot be deleted.
    pub fn delete_subtree(&mut self, dewey: &Dewey) -> MorphResult<u64> {
        if dewey.len() <= 1 {
            return Err(mutation_err("cannot delete the document root"));
        }
        let prefix = dewey.encode();
        let mut victims: Vec<(Vec<u8>, TypeId)> = Vec::new();
        for (k, v) in self.nodes.scan_prefix(&prefix) {
            let (t, _) = parse_node_value(&v).ok_or(MorphError::Internal("corrupt nodes entry"))?;
            victims.push((k, t));
        }
        if victims.is_empty() {
            return Err(mutation_err(format!("no node {dewey}")));
        }
        let root_type = victims[0].1;
        let shared = Arc::clone(&self.shared);
        let _gate = shared.gate.write().unwrap();
        self.cow_pin(victims.iter().map(|(_, t)| *t));
        let txn = self.store.begin().in_op("begin mutation transaction")?;
        let mut deltas = Deltas::new();
        let mut removed_per_type: HashMap<TypeId, i64> = HashMap::new();
        for (k, t) in &victims {
            self.nodes.delete(k).in_op("delete from tree \"nodes\"")?;
            let mut tk = Vec::with_capacity(4 + k.len());
            tk.extend_from_slice(&t.0.to_be_bytes());
            tk.extend_from_slice(k);
            self.typeseq
                .delete(&tk)
                .in_op("delete from tree \"typeseq\"")?;
            let mut comps = Vec::new();
            if decode_components_into(k, &mut comps) {
                delta_removed(&mut deltas, *t, comps);
            }
            *removed_per_type.entry(*t).or_insert(0) += 1;
        }
        for (t, n) in removed_per_type {
            self.shape.add_instances(t, -n);
        }
        let parent = dewey.parent().expect("len > 1 has a parent");
        let remaining = self.count_children_of_type(root_type, &parent)?;
        let old = self.shape.card(root_type);
        self.shape
            .set_card(root_type, Card::new(old.min.min(remaining), old.max));
        self.persist_shape()?;
        let n = victims.len() as u64;
        self.apply_deltas(deltas)?;
        txn.commit().in_op("commit mutation transaction")?;
        Ok(n)
    }

    /// Parse `fragment` (one rooted element) and insert it as the
    /// *last* child of the node at `parent`; returns the new root's
    /// Dewey number. Appends take the next ordinal after the current
    /// maximum, so no existing label moves. New element names intern
    /// new types; shape counts and cardinalities maintain themselves
    /// conservatively (bounds only widen).
    pub fn insert_subtree(&mut self, parent: &Dewey, fragment: &str) -> MorphResult<Dewey> {
        let ptype = self.node_type_required(parent)?;
        let max = self.child_ordinals(parent)?.last().copied().unwrap_or(0);
        let ord = max
            .checked_add(1)
            .ok_or_else(|| mutation_err("child ordinal space exhausted"))?;
        let shared = Arc::clone(&self.shared);
        let _gate = shared.gate.write().unwrap();
        let txn = self.store.begin().in_op("begin mutation transaction")?;
        let dewey = self.insert_fragment_at(parent, ptype, ord, fragment)?;
        txn.commit().in_op("commit mutation transaction")?;
        Ok(dewey)
    }

    /// Parse `fragment` (one rooted element) and insert it immediately
    /// *before* the node at `sibling` (which must not be the document
    /// root); returns the new root's Dewey number. Gap-aware: when the
    /// ordinal gap before `sibling` is open (deletes and previous
    /// renumbers leave gaps), the new node takes the midpoint and
    /// nothing renumbers. When the gap is exhausted, `sibling` and the
    /// siblings after it move to fresh ordinals strided by
    /// [`GAP_STRIDE`] above the current maximum — a renumber local to
    /// this one child list that seeds gaps for the next insert.
    pub fn insert_subtree_before(&mut self, sibling: &Dewey, fragment: &str) -> MorphResult<Dewey> {
        let parent = sibling
            .parent()
            .ok_or_else(|| mutation_err("cannot insert before the document root"))?;
        self.node_type_required(sibling)?;
        let ptype = self.node_type_required(&parent)?;
        let ords = self.child_ordinals(&parent)?;
        let b = *sibling.components().last().expect("non-root dewey");
        let a = ords.iter().copied().filter(|&o| o < b).max().unwrap_or(0);
        let shared = Arc::clone(&self.shared);
        let _gate = shared.gate.write().unwrap();
        // Both arms — midpoint insert or local renumber + insert — are
        // a single logical mutation, so one transaction covers them.
        let txn = self.store.begin().in_op("begin mutation transaction")?;
        if b - a > 1 {
            let dewey = self.insert_fragment_at(&parent, ptype, a + (b - a) / 2, fragment)?;
            txn.commit().in_op("commit mutation transaction")?;
            return Ok(dewey);
        }
        let max = *ords.last().expect("sibling exists");
        let fresh = |slot: u32| -> MorphResult<u32> {
            slot.checked_mul(GAP_STRIDE)
                .and_then(|off| max.checked_add(off))
                .ok_or_else(|| mutation_err("child ordinal space exhausted"))
        };
        let insert_ord = fresh(1)?;
        let tail: Vec<u32> = ords.iter().copied().filter(|&o| o >= b).collect();
        let mut deltas = Deltas::new();
        for (i, &o) in tail.iter().enumerate() {
            let new_o = fresh(i as u32 + 2)?;
            self.renumber_child(&parent, o, new_o, &mut deltas)?;
        }
        self.apply_deltas(deltas)?;
        let dewey = self.insert_fragment_at(&parent, ptype, insert_ord, fragment)?;
        txn.commit().in_op("commit mutation transaction")?;
        Ok(dewey)
    }

    /// Re-persist the column segments of every type whose cached
    /// column has outrun its on-disk segment (mutations drop the stale
    /// segment immediately but defer the rewrite, so a burst of
    /// updates pays for one encode, not one per update). Returns the
    /// number of segments written; a no-op on in-memory stores.
    pub fn persist_dirty_columns(&mut self) -> MorphResult<usize> {
        if !self.store.is_persistent() {
            self.dirty.clear();
            self.bumped_since_persist.clear();
            return Ok(0);
        }
        // Segment rewrites race snapshot lazy loads the same way tree
        // writes do; hold the writer gate across the burst.
        let shared = Arc::clone(&self.shared);
        let _gate = shared.gate.write().unwrap();
        // Sorted, so the device sees the same write sequence on every
        // run — crash points in the fault-injection sweep stay
        // reproducible.
        let mut dirty: Vec<TypeId> = self.dirty.drain().collect();
        dirty.sort_by_key(|t| t.0);
        let mut written = 0usize;
        // The segment rewrites land atomically: a crash mid-burst must
        // not leave half the dirty types re-persisted. The commit has
        // to precede the flush — flushing blocks while a transaction
        // is open.
        let txn = self.store.begin().in_op("begin persist transaction")?;
        for t in dirty {
            let has = self.columns.read().unwrap().contains_key(&t)
                || self.pending_deltas.lock().unwrap().contains_key(&t);
            if has {
                // `column` settles any pending delta before serving.
                let col = self.column(t);
                let bytes = col.encode_segment(self.expected_generation(t));
                self.store
                    .put_segment(&colseg::segment_name(t), &bytes)
                    .in_op("rewrite column segment")?;
                written += 1;
            }
        }
        txn.commit().in_op("commit persist transaction")?;
        // Fresh segments are on their way to disk; the next mutation of
        // any type must bump its generation again to invalidate them.
        self.bumped_since_persist.clear();
        self.store.flush().in_op("flush column segments")?;
        Ok(written)
    }

    /// Column-maintenance counters for this handle (see
    /// [`MaintenanceStats`]).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            merged_columns: self.merged_columns.load(Ordering::Relaxed),
            invalidated_columns: self.invalidated_columns,
            column_rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }

    fn node_type_required(&self, dewey: &Dewey) -> MorphResult<TypeId> {
        self.nodes
            .get(&dewey.encode())
            .in_op("read tree \"nodes\"")?
            .and_then(|v| parse_node_value(&v))
            .map(|(t, _)| t)
            .ok_or_else(|| mutation_err(format!("no node {dewey}")))
    }

    /// Distinct child ordinals of `parent`, ascending. One key-only
    /// scan of the subtree; values never materialize.
    fn child_ordinals(&self, parent: &Dewey) -> MorphResult<Vec<u32>> {
        let prefix = parent.encode();
        let plen = parent.len();
        let mut out: Vec<u32> = Vec::new();
        let mut iter = self.nodes.scan_prefix(&prefix);
        while let Some(k) = iter.next_key().in_op("scan tree \"nodes\"")? {
            if k.len() < (plen + 1) * 4 {
                continue; // the parent's own entry
            }
            let ord = u32::from_be_bytes(k[plen * 4..plen * 4 + 4].try_into().unwrap());
            if out.last() != Some(&ord) {
                out.push(ord);
            }
        }
        Ok(out)
    }

    /// Children of `parent` with type `t` (their shared depth makes
    /// the `(type, parent-prefix)` probe exact).
    fn count_children_of_type(&self, t: TypeId, parent: &Dewey) -> MorphResult<u64> {
        let mut key = Vec::with_capacity(4 + parent.len() * 4);
        key.extend_from_slice(&t.0.to_be_bytes());
        key.extend_from_slice(&parent.encode());
        let mut n = 0u64;
        let mut iter = self.typeseq.scan_prefix(&key);
        while iter.next_key().in_op("scan tree \"typeseq\"")?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Move the subtree under `parent.child(old_ord)` to
    /// `parent.child(new_ord)`, rewriting one component in every key
    /// and folding the moves into `deltas`. The caller guarantees
    /// `new_ord` is unoccupied (renumber targets sit above the current
    /// maximum ordinal).
    fn renumber_child(
        &mut self,
        parent: &Dewey,
        old_ord: u32,
        new_ord: u32,
        deltas: &mut Deltas,
    ) -> MorphResult<()> {
        let prefix = parent.child(old_ord).encode();
        let idx = parent.len();
        let moves: Vec<(Vec<u8>, Vec<u8>)> = self.nodes.scan_prefix(&prefix).collect();
        self.cow_pin(
            moves
                .iter()
                .filter_map(|(_, v)| parse_node_value(v).map(|(t, _)| t)),
        );
        for (k, v) in moves {
            let (t, text) =
                parse_node_value(&v).ok_or(MorphError::Internal("corrupt nodes entry"))?;
            let mut nk = k.clone();
            nk[idx * 4..idx * 4 + 4].copy_from_slice(&new_ord.to_be_bytes());
            self.nodes.delete(&k).in_op("delete from tree \"nodes\"")?;
            self.nodes
                .insert(&nk, &v)
                .in_op("insert into tree \"nodes\"")?;
            let tkey = |d: &[u8]| {
                let mut out = Vec::with_capacity(4 + d.len());
                out.extend_from_slice(&t.0.to_be_bytes());
                out.extend_from_slice(d);
                out
            };
            self.typeseq
                .delete(&tkey(&k))
                .in_op("delete from tree \"typeseq\"")?;
            self.typeseq
                .insert(&tkey(&nk), text.as_bytes())
                .in_op("insert into tree \"typeseq\"")?;
            let mut old_comps = Vec::new();
            let mut new_comps = Vec::new();
            if decode_components_into(&k, &mut old_comps)
                && decode_components_into(&nk, &mut new_comps)
            {
                delta_removed(deltas, t, old_comps);
                delta_added(deltas, t, new_comps, text);
            }
        }
        Ok(())
    }

    fn insert_fragment_at(
        &mut self,
        parent: &Dewey,
        parent_type: TypeId,
        ordinal: u32,
        fragment: &str,
    ) -> MorphResult<Dewey> {
        let root_dewey = parent.child(ordinal);
        if self
            .nodes
            .get(&root_dewey.encode())
            .in_op("read tree \"nodes\"")?
            .is_some()
        {
            return Err(mutation_err(format!("label {root_dewey} is occupied")));
        }
        let (entries, root_type) =
            shred_fragment(&mut self.shape, parent_type, &root_dewey, fragment)?;
        // Pin before the first tree write. Types the fragment merely
        // interned pin an empty column — harmless, since no snapshot's
        // frozen shape knows them. (Shape edits above don't need the
        // pin: snapshots hold their own `Arc` clone of the shape.)
        self.cow_pin(entries.iter().map(|(t, _, _)| *t));
        let mut deltas = Deltas::new();
        for (t, d, text) in &entries {
            self.nodes
                .insert(&d.encode(), &node_value(*t, text))
                .in_op("insert into tree \"nodes\"")?;
            self.typeseq
                .insert(&typeseq_key(*t, d), text.as_bytes())
                .in_op("insert into tree \"typeseq\"")?;
            delta_added(&mut deltas, *t, d.components().to_vec(), text.clone());
        }
        // The edge into the inserted root's type: fold in this
        // parent's new child count. `min` only moves down (a fresh
        // type starts 0..0 and stays min-0 for the other parents that
        // lack it); `max` widens to cover this parent.
        let n_now = self.count_children_of_type(root_type, parent)?;
        let old = self.shape.card(root_type);
        self.shape.set_card(
            root_type,
            Card::new(old.min.min(n_now), old.max.max(CardMax::Finite(n_now))),
        );
        self.persist_shape()?;
        self.apply_deltas(deltas)?;
        Ok(root_dewey)
    }

    fn persist_shape(&self) -> MorphResult<()> {
        self.meta
            .insert(META_SHAPE_KEY, &self.shape.to_bytes())
            .in_op("rewrite adorned shape")?;
        Ok(())
    }

    /// Apply the per-type column maintenance for one mutation: every
    /// touched type gets a fresh per-type generation; a cached column
    /// merges in place (and is marked dirty for a deferred segment
    /// rewrite), an uncached one is invalidated; either way the stale
    /// persisted segment is dropped so its extent returns to the
    /// store's free list.
    fn apply_deltas(&mut self, deltas: Deltas) -> MorphResult<()> {
        if !deltas.is_empty() {
            // Publish the new epoch: snapshots published from here on
            // see the post-mutation state, and the touched map records
            // which epoch last moved each type (the staleness signal
            // snapshot republication and lazy loads check against —
            // per-type generations can't serve that role because
            // repeat touches between persists skip the bump).
            self.epoch += 1;
            let epoch = self.epoch;
            let mut touched = self.shared.touched.lock().unwrap();
            for t in deltas.keys() {
                touched.insert(*t, epoch);
            }
            drop(touched);
            // Scoped invalidation: a cached distance or join plan
            // depends only on its two types' columns and instance
            // counts, so entries where neither side moved stay exact.
            // (Plans additionally pin a column Arc — stale for moved
            // types, hence they retire with the same predicate.)
            self.plan_cache
                .write()
                .unwrap()
                .retain(|(a, b), _| !deltas.contains_key(a) && !deltas.contains_key(b));
            self.dist_cache
                .lock()
                .unwrap()
                .retain(|(a, b), _| !deltas.contains_key(a) && !deltas.contains_key(b));
        }
        for (t, delta) in deltas {
            // First touch since the last persist pays the bump: a new
            // per-type generation, its meta write, and the drop of the
            // stale segment. Repeat touches skip all three — the
            // segment is already gone and the persisted tygen already
            // fences it — which is what keeps a burst of updates to
            // one type at a single tree write per update.
            if self.bumped_since_persist.insert(t) {
                let gen = self.next_gen;
                self.next_gen += 1;
                self.tygens.lock().unwrap().insert(t, gen);
                self.meta
                    .insert(&tygen_key(t), &gen.to_le_bytes())
                    .in_op("write per-type generation")?;
                if self.store.is_persistent() {
                    self.store
                        .delete_segment(&colseg::segment_name(t))
                        .in_op("drop stale column segment")?;
                }
            }
            let cached = self.columns.read().unwrap().contains_key(&t);
            let mut pending = self.pending_deltas.lock().unwrap();
            if cached || pending.contains_key(&t) {
                // Defer the merge: fold the delta into the pending
                // buffer; the next column read pays for one merge over
                // the whole accumulated batch.
                fold_delta(pending.entry(t).or_default(), delta);
                self.dirty.insert(t);
            } else {
                self.invalidated_columns += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::shredded::OpenOptions;
    use xmorph_pagestore::Store;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    fn shredded(xml: &str) -> (Store, ShreddedDoc) {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        (store, doc)
    }

    fn ty(doc: &ShreddedDoc, dotted: &str) -> TypeId {
        let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
        doc.types()
            .lookup(&path)
            .unwrap_or_else(|| panic!("no type {dotted}"))
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn texts(doc: &ShreddedDoc, dotted: &str) -> Vec<String> {
        doc.scan_type(ty(doc, dotted))
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xmorph-mutate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn update_text_rewrites_both_tables_and_column() {
        let (_s, mut doc) = shredded(FIG1A);
        let title = ty(&doc, "data.book.title");
        doc.column(title); // cache it → merge path
        doc.update_text(&d("1.1.1"), "  Z  ").unwrap();
        assert_eq!(doc.node_text(&d("1.1.1")).unwrap().as_deref(), Some("Z"));
        assert_eq!(texts(&doc, "data.book.title"), ["Z", "Y"]);
        assert_eq!(doc.scan_type(title), doc.scan_type_btree(title));
        let stats = doc.maintenance_stats();
        assert_eq!(stats.merged_columns, 1);
        assert_eq!(stats.invalidated_columns, 0);
    }

    #[test]
    fn update_text_on_uncached_column_invalidates_only_that_type() {
        let (_s, mut doc) = shredded(FIG1A);
        doc.update_text(&d("1.1.1"), "Z").unwrap();
        let stats = doc.maintenance_stats();
        assert_eq!(stats.merged_columns, 0);
        assert_eq!(stats.invalidated_columns, 1);
        assert_eq!(texts(&doc, "data.book.title"), ["Z", "Y"]);
    }

    #[test]
    fn update_text_missing_node_errors() {
        let (_s, mut doc) = shredded(FIG1A);
        assert!(matches!(
            doc.update_text(&d("1.9.9"), "x"),
            Err(MorphError::Mutation { .. })
        ));
    }

    #[test]
    fn delete_subtree_removes_descendants_and_widens_card() {
        let (_s, mut doc) = shredded(FIG1A);
        let author = ty(&doc, "data.book.author");
        let name = ty(&doc, "data.book.author.name");
        doc.column(name);
        let removed = doc.delete_subtree(&d("1.1.2")).unwrap();
        assert_eq!(removed, 2); // author + name
        assert_eq!(doc.instance_count(author), 1);
        assert_eq!(doc.instance_count(name), 1);
        assert_eq!(texts(&doc, "data.book.author.name"), ["Tim"]);
        assert_eq!(doc.scan_type(name), doc.scan_type_btree(name));
        // Book 1.1 now has zero authors: the edge min must widen to 0.
        assert_eq!(doc.shape().card(author).min, 0);
        // The closest join no longer finds an author for book 1.1.
        let book = ty(&doc, "data.book");
        assert!(!doc.has_closest_child(&d("1.1"), book, author));
        assert!(doc.has_closest_child(&d("1.2"), book, author));
    }

    #[test]
    fn delete_root_is_rejected() {
        let (_s, mut doc) = shredded(FIG1A);
        assert!(matches!(
            doc.delete_subtree(&d("1")),
            Err(MorphError::Mutation { .. })
        ));
    }

    #[test]
    fn insert_subtree_appends_densely() {
        let (_s, mut doc) = shredded(FIG1A);
        let dewey = doc
            .insert_subtree(
                &d("1"),
                "<book><title>N</title><author><name>Ann</name></author></book>",
            )
            .unwrap();
        assert_eq!(dewey.to_string(), "1.3");
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 3);
        assert_eq!(texts(&doc, "data.book.title"), ["X", "Y", "N"]);
        assert_eq!(texts(&doc, "data.book.author.name"), ["Tim", "Tim", "Ann"]);
        // Shape stayed consistent: the new book lacks a publisher, so
        // that edge's min widened to 0.
        assert_eq!(doc.shape().card(ty(&doc, "data.book.publisher")).min, 0);
        let title = ty(&doc, "data.book.title");
        assert_eq!(doc.scan_type(title), doc.scan_type_btree(title));
    }

    #[test]
    fn insert_subtree_interns_new_types_and_attrs() {
        let (_s, mut doc) = shredded(FIG1A);
        doc.insert_subtree(&d("1.1"), r#"<review stars="5">good</review>"#)
            .unwrap();
        let review = ty(&doc, "data.book.review");
        let stars = ty(&doc, "data.book.review.@stars");
        assert_eq!(doc.instance_count(review), 1);
        assert_eq!(texts(&doc, "data.book.review.@stars"), ["5"]);
        // New type under a 2-instance parent: the other book has none.
        assert_eq!(doc.shape().card(review).min, 0);
        assert_eq!(doc.shape().card(stars).min, 0);
        // The new type joins: the review's closest title is book 1's.
        let title = ty(&doc, "data.book.title");
        let (dewey, _) = doc.scan_type(review).remove(0);
        let joined = doc.closest_children(&dewey, review, title);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].1, "X");
    }

    #[test]
    fn insert_before_uses_gap_left_by_delete() {
        let (_s, mut doc) = shredded(FIG1A);
        // Delete book 1.1 → ordinal 1 is free; insert before book 1.2
        // must land in the gap without renumbering 1.2.
        doc.delete_subtree(&d("1.1")).unwrap();
        let dewey = doc
            .insert_subtree_before(&d("1.2"), "<book><title>G</title></book>")
            .unwrap();
        assert_eq!(dewey.to_string(), "1.1");
        assert_eq!(texts(&doc, "data.book.title"), ["G", "Y"]);
    }

    #[test]
    fn insert_before_renumbers_locally_when_gap_exhausted() {
        let (_s, mut doc) = shredded(FIG1A);
        let dewey = doc
            .insert_subtree_before(&d("1.2"), "<book><title>M</title></book>")
            .unwrap();
        // No gap between books 1 and 2: the tail renumbers above the
        // old maximum with stride gaps, the insert lands before it.
        assert_eq!(dewey.to_string(), format!("1.{}", 2 + GAP_STRIDE));
        assert_eq!(texts(&doc, "data.book.title"), ["X", "M", "Y"]);
        let title = ty(&doc, "data.book.title");
        assert_eq!(doc.scan_type(title), doc.scan_type_btree(title));
        // The renumbered book still joins its own title, not its
        // neighbour's.
        let publisher = ty(&doc, "data.book.publisher");
        let moved_book = doc.scan_type(ty(&doc, "data.book"))[2].0.clone();
        let joined = doc.closest_children(&doc.scan_type(publisher)[1].0.clone(), publisher, title);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].1, "Y");
        assert!(moved_book.components()[1] > 2);
        // A second insert in the same place now finds a stride gap.
        let again = doc
            .insert_subtree_before(
                &doc.scan_type(ty(&doc, "data.book"))[2].0,
                "<book><title>m2</title></book>",
            )
            .unwrap();
        assert_eq!(texts(&doc, "data.book.title"), ["X", "M", "m2", "Y"]);
        assert!(again.components()[1] > GAP_STRIDE);
    }

    #[test]
    fn mutations_clear_distance_cache() {
        let (_s, mut doc) = shredded("<d><a><x>1</x></a><b>2</b></d>");
        let b = ty(&doc, "d.b");
        // x and b never co-occur below the root: distance via root = 3.
        let x = ty(&doc, "d.a.x");
        assert_eq!(doc.type_distance_exact(x, b), Some(3));
        // Insert an x inside... a new b under a: now a holds both.
        doc.insert_subtree(&d("1.1"), "<b>3</b>").unwrap();
        let ab = ty(&doc, "d.a.b");
        assert_eq!(doc.type_distance_exact(x, ab), Some(2));
    }

    #[test]
    fn per_type_generation_staleness_is_scoped() {
        // Mutating one type must not invalidate other types' persisted
        // segments: a cold reopen still maps them, while the mutated
        // type's segment is gone and rebuilds from typeseq.
        let path = temp_path("scoped-gen.db");
        {
            let store = Store::create(&path).unwrap();
            let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            doc.update_text(&d("1.1.1"), "Z").unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let title = ty(&doc, "data.book.title");
        let pub_name = ty(&doc, "data.book.publisher.name");
        assert_eq!(texts(&doc, "data.book.title"), ["Z", "Y"]);
        assert!(!doc.column(title).is_mapped(), "mutated segment dropped");
        assert_eq!(
            doc.column(pub_name).is_mapped(),
            store.supports_mmap(),
            "untouched segment must still serve"
        );
        assert!(doc.segment_fallbacks().is_empty(), "no stale fallback");
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_dirty_columns_restores_cold_open() {
        let path = temp_path("dirty-persist.db");
        {
            let store = Store::create(&path).unwrap();
            let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            let title = ty(&doc, "data.book.title");
            doc.column(title);
            doc.update_text(&d("1.1.1"), "Z").unwrap();
            assert_eq!(doc.persist_dirty_columns().unwrap(), 1);
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let title = ty(&doc, "data.book.title");
        let col = doc.column(title);
        assert_eq!(col.is_mapped(), store.supports_mmap());
        assert_eq!(texts(&doc, "data.book.title"), ["Z", "Y"]);
        assert!(doc.segment_fallbacks().is_empty());
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reshred_supersedes_per_type_generations() {
        let path = temp_path("reshred-tygen.db");
        {
            let store = Store::create(&path).unwrap();
            let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            doc.update_text(&d("1.1.1"), "Z").unwrap();
            // Full re-shred: per-type overrides must clear and the new
            // store-wide generation must outrun them.
            let doc2 = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            assert_eq!(
                doc2.expected_generation(ty(&doc2, "data.book.title")),
                doc2.expected_generation(ty(&doc2, "data.book"))
            );
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        assert_eq!(texts(&doc, "data.book.title"), ["X", "Y"]);
        assert!(doc.segment_fallbacks().is_empty());
        drop((doc, store));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutated_doc_matches_fresh_shred_behaviourally() {
        let (_s, mut doc) = shredded(FIG1A);
        doc.update_text(&d("1.2.1"), "Y2").unwrap();
        doc.delete_subtree(&d("1.1.3")).unwrap();
        doc.insert_subtree(&d("1.2"), "<award>prize</award>")
            .unwrap();
        let fresh_xml = "<data>\
            <book><title>X</title><author><name>Tim</name></author></book>\
            <book><title>Y2</title><author><name>Tim</name></author><publisher><name>V</name></publisher><award>prize</award></book>\
            </data>";
        let (_s2, fresh) = shredded(fresh_xml);
        for id in fresh.types().ids() {
            let dotted = fresh.types().dotted(id);
            let mirror = ty(&doc, &dotted);
            assert_eq!(
                doc.scan_type(mirror)
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect::<Vec<_>>(),
                fresh
                    .scan_type(id)
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect::<Vec<_>>(),
                "type {dotted}"
            );
            assert_eq!(doc.instance_count(mirror), fresh.instance_count(id));
        }
        // Rendered guard output is byte-identical (the renderer is
        // untouched by the mutation machinery).
        let guard = crate::Guard::parse("MORPH book [ title author [ name ] ]").unwrap();
        assert_eq!(
            guard.apply(&doc).unwrap().xml,
            guard.apply(&fresh).unwrap().xml
        );
    }

    #[test]
    fn merge_and_rebuild_agree_after_mixed_mutations() {
        // Two docs, same mutations; one keeps every column hot (merge
        // path), the other evicts before each mutation (invalidate +
        // rebuild path). They must agree everywhere.
        let (_s1, mut hot) = shredded(FIG1A);
        let (_s2, mut cold) = shredded(FIG1A);
        for t in hot.types().ids().collect::<Vec<_>>() {
            hot.column(t);
        }
        let mutate = |doc: &mut ShreddedDoc| {
            doc.update_text(&d("1.1.1"), "new").unwrap();
            doc.delete_subtree(&d("1.2.2")).unwrap();
            doc.insert_subtree(&d("1.1"), "<award>w</award>").unwrap();
            doc.insert_subtree_before(&d("1.1.1"), "<isbn>i</isbn>")
                .unwrap();
        };
        mutate(&mut hot);
        cold.evict_columns();
        mutate(&mut cold);
        cold.evict_columns();
        for t in hot.types().ids().collect::<Vec<_>>() {
            assert_eq!(hot.scan_type(t), hot.scan_type_btree(t), "hot {t:?}");
            assert_eq!(hot.scan_type(t), cold.scan_type(t), "hot vs cold {t:?}");
        }
        // Merges are deferred to the first read, so the counter is
        // checked after the scans settled the pending deltas.
        assert!(hot.maintenance_stats().merged_columns > 0);
    }

    #[test]
    fn batched_probes_agree_after_mutations() {
        // Delta folding must produce columns the batch kernel reads
        // exactly like the per-parent path — across merges, pending
        // deltas, and a persisted (v2-segment) cold reopen.
        let path = temp_path("batch-mutate.db");
        {
            let store = Store::create(&path).unwrap();
            let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
            for t in doc.types().ids().collect::<Vec<_>>() {
                doc.column(t);
            }
            doc.update_text(&d("1.1.1"), "Z").unwrap();
            doc.insert_subtree(&d("1.2"), "<award>prize</award>")
                .unwrap();
            doc.delete_subtree(&d("1.1.3")).unwrap();
            let check = |doc: &ShreddedDoc| {
                for a in doc.types().ids().collect::<Vec<_>>() {
                    let parents: Vec<Dewey> =
                        doc.scan_type(a).into_iter().map(|(p, _)| p).collect();
                    for b in doc.types().ids().collect::<Vec<_>>() {
                        let Some((_, ranges)) = doc.closest_children_batch(&parents, a, b) else {
                            continue;
                        };
                        for (p, r) in parents.iter().zip(&ranges) {
                            let (_, want) = doc.closest_group(p, a, b).unwrap();
                            assert_eq!(*r, want, "batch group {p} {a:?}->{b:?}");
                        }
                    }
                }
            };
            check(&doc);
            doc.persist_dirty_columns().unwrap();
            store.close().unwrap();
            let store = Store::open(&path).unwrap();
            let doc = ShreddedDoc::open(&store).unwrap();
            check(&doc);
            assert!(doc.segment_fallbacks().is_empty());
            store.close().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_after_mutation_sees_updated_shape() {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        doc.insert_subtree(&d("1"), "<book><title>N</title></book>")
            .unwrap();
        drop(doc);
        let doc = ShreddedDoc::open_with(&store, &OpenOptions::default()).unwrap();
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 3);
        assert_eq!(texts(&doc, "data.book.title"), ["X", "Y", "N"]);
    }
}

//! On-disk format for persisted [`TypeColumn`]s — one page-aligned
//! pagestore segment per type, written at shred time and decoded (or
//! mapped) at open time so a cold reopen skips the `typeseq` B+tree
//! walk and Dewey decode entirely.
//!
//! Two wire formats share the 64-byte header size, distinguished by
//! magic. **v1** stores the raw arrays; **v2** — the current write
//! format — delta-compresses them: Dewey rows are sorted and share
//! long prefixes, so a componentwise delta against the previous row is
//! almost always zero or tiny, and a zigzag + LEB128 varint stores it
//! in one byte. Readers accept both; writers emit v2 only.
//!
//! v1 layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "XMCOL001"
//!      8     4  format version (1)
//!     12     4  row width (Dewey components per row)
//!     16     8  row count
//!     24     8  text arena length, bytes
//!     32     8  source typeseq generation
//!     40     8  FNV-1a64 of the payload
//!     48     8  FNV-1a64 of header bytes 0..48
//!     56     8  zero padding (keeps the payload 4-byte aligned *and*
//!               64-byte cache-line aligned within the page-aligned map)
//!     64     —  payload: rows×width u32 comps, rows+1 u32 offsets,
//!               UTF-8 texts
//! ```
//!
//! v2 layout (see DESIGN.md §4g):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "XMCOL002"
//!      8     4  format version (2)
//!     12     4  row width (Dewey components per row)
//!     16     8  row count
//!     24     8  text arena length, bytes
//!     32     8  source typeseq generation
//!     40     4  encoded comps length, bytes
//!     44     4  encoded offsets length, bytes
//!     48     8  FNV-1a64 of the payload
//!     56     8  FNV-1a64 of header bytes 0..56
//!     64     —  payload: comps varints ‖ offsets varints ‖ UTF-8 texts
//! ```
//!
//! v2 comps: row-major, each component encoded as the zigzag LEB128
//! varint of its delta against the same component of the previous row
//! (the first row deltas against an all-zero row). v2 offsets: the
//! `rows + 1` arena offsets as plain (unsigned) LEB128 deltas against
//! the previous offset — monotone by construction, so decoding can
//! never produce a backwards offset. The text arena is stored raw and,
//! on a mapped segment, served zero-copy.
//!
//! The generation a segment must carry to be believed is **per type**:
//! a full shred bumps the store-wide `meta["colgen"]`, while a mutation
//! (see [`crate::store::mutate`]) assigns the touched type a newer
//! per-type generation under `meta["tygen."‖TypeId]` and deletes that
//! type's segment — so after a 1%-node update only the touched types'
//! segments go stale and every other segment still opens. A segment
//! surviving from a superseded generation fails the check and degrades
//! to a lazy rebuild — as does any checksum, bounds, monotonicity,
//! varint, or UTF-8 violation. Validation is total: a reader that gets
//! a [`ParsedSegment`] back may use it without further checks, and the
//! varint decoder bounds every allocation by the segment's actual byte
//! length, so a forged header cannot balloon memory.
//!
//! [`TypeColumn`]: crate::store::shredded::TypeColumn

use crate::model::types::TypeId;
use std::ops::Range;

/// Magic bytes opening a v1 (uncompressed) column segment.
pub const COLSEG_MAGIC: &[u8; 8] = b"XMCOL001";
/// Magic bytes opening a v2 (delta/varint-compressed) column segment.
pub const COLSEG_MAGIC_V2: &[u8; 8] = b"XMCOL002";
/// v1 format version.
pub const COLSEG_VERSION: u32 = 1;
/// v2 format version — the current write format.
pub const COLSEG_VERSION_V2: u32 = 2;
/// Header size (both formats); the payload starts here.
pub const COLSEG_HEADER: usize = 64;

/// Name of the pagestore segment holding `t`'s column.
pub(crate) fn segment_name(t: TypeId) -> String {
    format!("col.{}", t.0)
}

/// 64-bit FNV-1a.
fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_parts(&[bytes])
}

/// 64-bit FNV-1a over the concatenation of `parts` (without
/// materializing it).
fn fnv1a64_parts(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

// ---- varint primitives ----

/// Append `v` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation).
fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint at `*pos`, advancing it. `None` on
/// truncation or a continuation chain past 64 bits — never panics,
/// whatever the bytes.
fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-fold a signed delta so small magnitudes of either sign take
/// one varint byte.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Byte ranges of a validated **v1** segment's payload sections,
/// relative to the start of the segment bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentLayout {
    /// Components per row.
    pub width: usize,
    /// Number of rows.
    pub rows: usize,
    /// `rows * width` u32 component words.
    pub comps: Range<usize>,
    /// `rows + 1` u32 arena offsets.
    pub offsets: Range<usize>,
    /// UTF-8 text arena.
    pub texts: Range<usize>,
}

/// A validated **v2** segment, decompressed: the component and offset
/// arrays are materialized (varints cannot be indexed in place), while
/// the raw text arena stays a byte range into the segment so a mapped
/// segment can keep serving texts zero-copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecodedColumn {
    /// Components per row.
    pub width: usize,
    /// Decoded row-major component words, `rows * width` of them.
    pub comps: Vec<u32>,
    /// Decoded `rows + 1` arena offsets.
    pub offsets: Vec<u32>,
    /// UTF-8 text arena, relative to the start of the segment bytes.
    pub texts: Range<usize>,
}

/// Outcome of [`parse`]: which wire format the segment carried, with
/// its validated contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParsedSegment {
    /// v1 — the payload sections are servable in place.
    V1(SegmentLayout),
    /// v2 — comps/offsets decoded to the heap, texts validated in
    /// place.
    V2(DecodedColumn),
}

/// Serialize one column into v1 (uncompressed) segment bytes. Kept for
/// the upgrade-compatibility tests; the write path uses [`encode_v2`].
pub(crate) fn encode_v1(
    width: usize,
    comps: &[u32],
    offsets: &[u32],
    texts: &str,
    generation: u64,
) -> Vec<u8> {
    debug_assert!(width == 0 || comps.len().is_multiple_of(width));
    debug_assert_eq!(
        offsets.len(),
        comps.len().checked_div(width).unwrap_or(0) + 1
    );
    let rows = offsets.len() - 1;
    let payload_len = (comps.len() + offsets.len()) * 4 + texts.len();
    let mut out = Vec::with_capacity(COLSEG_HEADER + payload_len);
    out.extend_from_slice(COLSEG_MAGIC);
    out.extend_from_slice(&COLSEG_VERSION.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(texts.len() as u64).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    // Payload checksum; header checksum over everything before it.
    let mut payload = Vec::with_capacity(payload_len);
    for w in comps {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for o in offsets {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    payload.extend_from_slice(texts.as_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    let header_sum = fnv1a64(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    out.resize(COLSEG_HEADER, 0);
    out.extend_from_slice(&payload);
    out
}

/// Serialize one column into v2 (delta/varint-compressed) segment
/// bytes — the current write format.
pub(crate) fn encode_v2(
    width: usize,
    comps: &[u32],
    offsets: &[u32],
    texts: &str,
    generation: u64,
) -> Vec<u8> {
    debug_assert!(width == 0 || comps.len().is_multiple_of(width));
    debug_assert_eq!(
        offsets.len(),
        comps.len().checked_div(width).unwrap_or(0) + 1
    );
    let rows = offsets.len() - 1;
    // Componentwise delta against the previous row (the first row
    // deltas against zero): sorted rows share long prefixes, so most
    // deltas are 0 and encode in one byte.
    let mut comps_enc = Vec::with_capacity(comps.len() + 8);
    let mut prev = vec![0u32; width];
    for r in 0..rows {
        for c in 0..width {
            let cur = comps[r * width + c];
            put_uvarint(&mut comps_enc, zigzag(i64::from(cur) - i64::from(prev[c])));
            prev[c] = cur;
        }
    }
    // Offsets are monotone, so plain unsigned deltas (= per-row text
    // lengths) suffice; the first varint is the first offset itself.
    let mut offsets_enc = Vec::with_capacity(offsets.len() + 4);
    let mut last = 0u32;
    for &o in offsets {
        debug_assert!(o >= last, "offsets must be monotone");
        put_uvarint(&mut offsets_enc, u64::from(o - last));
        last = o;
    }
    let payload_len = comps_enc.len() + offsets_enc.len() + texts.len();
    let mut out = Vec::with_capacity(COLSEG_HEADER + payload_len);
    out.extend_from_slice(COLSEG_MAGIC_V2);
    out.extend_from_slice(&COLSEG_VERSION_V2.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(texts.len() as u64).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    let comps_len = u32::try_from(comps_enc.len()).expect("comps encoding fits u32");
    let offsets_len = u32::try_from(offsets_enc.len()).expect("offsets encoding fits u32");
    out.extend_from_slice(&comps_len.to_le_bytes());
    out.extend_from_slice(&offsets_len.to_le_bytes());
    let payload_sum = fnv1a64_parts(&[&comps_enc, &offsets_enc, texts.as_bytes()]);
    out.extend_from_slice(&payload_sum.to_le_bytes());
    let header_sum = fnv1a64(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(out.len(), COLSEG_HEADER);
    out.extend_from_slice(&comps_enc);
    out.extend_from_slice(&offsets_enc);
    out.extend_from_slice(texts.as_bytes());
    out
}

fn u32_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Validate segment bytes (either wire format, dispatched on magic)
/// against the expected row width and current generation. Returns the
/// parsed segment, or the reason it must fall back to a lazy rebuild.
/// Every byte the result exposes is checked here — checksums, bounds,
/// offset monotonicity, varint well-formedness, text UTF-8 — so
/// readers can trust it unconditionally.
pub(crate) fn parse(
    bytes: &[u8],
    expect_width: usize,
    expect_generation: u64,
) -> Result<ParsedSegment, &'static str> {
    if bytes.len() < COLSEG_HEADER {
        return Err("shorter than header");
    }
    if &bytes[..8] == COLSEG_MAGIC {
        parse_v1(bytes, expect_width, expect_generation).map(ParsedSegment::V1)
    } else if &bytes[..8] == COLSEG_MAGIC_V2 {
        parse_v2(bytes, expect_width, expect_generation).map(ParsedSegment::V2)
    } else {
        Err("bad magic")
    }
}

fn parse_v1(
    bytes: &[u8],
    expect_width: usize,
    expect_generation: u64,
) -> Result<SegmentLayout, &'static str> {
    if u32_at(bytes, 8) != COLSEG_VERSION {
        return Err("unsupported format version");
    }
    if u64_at(bytes, 48) != fnv1a64(&bytes[..48]) {
        return Err("header checksum mismatch");
    }
    let width = u32_at(bytes, 12) as usize;
    let rows = u64_at(bytes, 16);
    let texts_len = u64_at(bytes, 24);
    let generation = u64_at(bytes, 32);
    if width != expect_width {
        return Err("row width disagrees with shape");
    }
    if generation != expect_generation {
        return Err("stale generation");
    }
    let rows = usize::try_from(rows).map_err(|_| "row count overflow")?;
    let texts_len = usize::try_from(texts_len).map_err(|_| "texts length overflow")?;
    let comps_len = rows
        .checked_mul(width)
        .and_then(|n| n.checked_mul(4))
        .ok_or("comps length overflow")?;
    let offsets_len = (rows + 1) * 4;
    let payload_len = comps_len
        .checked_add(offsets_len)
        .and_then(|n| n.checked_add(texts_len))
        .ok_or("payload length overflow")?;
    // Trailing page padding beyond the payload is fine; truncation is not.
    if bytes.len() < COLSEG_HEADER + payload_len {
        return Err("payload truncated");
    }
    let payload = &bytes[COLSEG_HEADER..COLSEG_HEADER + payload_len];
    if u64_at(bytes, 40) != fnv1a64(payload) {
        return Err("payload checksum mismatch");
    }
    let comps = COLSEG_HEADER..COLSEG_HEADER + comps_len;
    let offsets = comps.end..comps.end + offsets_len;
    let texts = offsets.end..offsets.end + texts_len;
    // Offsets must start at 0, end at texts_len, never decrease, and
    // every boundary must fall on a UTF-8 character boundary (checked
    // via the full-arena validation plus per-boundary is_char_boundary).
    let arena = std::str::from_utf8(&bytes[texts.clone()]).map_err(|_| "texts not UTF-8")?;
    let mut prev = 0u32;
    for i in 0..=rows {
        let o = u32_at(bytes, offsets.start + i * 4);
        if i == 0 && o != 0 {
            return Err("first offset not zero");
        }
        if o < prev {
            return Err("offsets not monotone");
        }
        if o as usize > texts_len || !arena.is_char_boundary(o as usize) {
            return Err("offset outside arena");
        }
        prev = o;
    }
    if prev as usize != texts_len {
        return Err("last offset disagrees with arena length");
    }
    Ok(SegmentLayout {
        width,
        rows,
        comps,
        offsets,
        texts,
    })
}

fn parse_v2(
    bytes: &[u8],
    expect_width: usize,
    expect_generation: u64,
) -> Result<DecodedColumn, &'static str> {
    if u32_at(bytes, 8) != COLSEG_VERSION_V2 {
        return Err("unsupported format version");
    }
    if u64_at(bytes, 56) != fnv1a64(&bytes[..56]) {
        return Err("header checksum mismatch");
    }
    let width = u32_at(bytes, 12) as usize;
    let rows = u64_at(bytes, 16);
    let texts_len = u64_at(bytes, 24);
    let generation = u64_at(bytes, 32);
    let comps_enc_len = u32_at(bytes, 40) as usize;
    let offsets_enc_len = u32_at(bytes, 44) as usize;
    if width != expect_width {
        return Err("row width disagrees with shape");
    }
    if generation != expect_generation {
        return Err("stale generation");
    }
    let rows = usize::try_from(rows).map_err(|_| "row count overflow")?;
    let texts_len = usize::try_from(texts_len).map_err(|_| "texts length overflow")?;
    let payload_len = comps_enc_len
        .checked_add(offsets_enc_len)
        .and_then(|n| n.checked_add(texts_len))
        .ok_or("payload length overflow")?;
    let end = COLSEG_HEADER
        .checked_add(payload_len)
        .ok_or("payload length overflow")?;
    // Trailing page padding beyond the payload is fine; truncation is not.
    if bytes.len() < end {
        return Err("payload truncated");
    }
    let payload = &bytes[COLSEG_HEADER..end];
    if u64_at(bytes, 48) != fnv1a64(payload) {
        return Err("payload checksum mismatch");
    }
    let nvals = rows.checked_mul(width).ok_or("comps length overflow")?;
    // Every varint occupies at least one byte, so the declared value
    // counts are bounded by the encoded section lengths — which are in
    // turn bounded by the segment's real byte length. A forged header
    // cannot make the decoder allocate past the bytes it was handed.
    if nvals > comps_enc_len {
        return Err("comps count exceeds encoding");
    }
    if rows + 1 > offsets_enc_len {
        return Err("offsets count exceeds encoding");
    }
    let comps_enc = &payload[..comps_enc_len];
    let offsets_enc = &payload[comps_enc_len..comps_enc_len + offsets_enc_len];
    let texts = COLSEG_HEADER + comps_enc_len + offsets_enc_len..end;

    let mut comps = Vec::with_capacity(nvals);
    let mut prev = vec![0u32; width];
    let mut pos = 0usize;
    for _ in 0..rows {
        for p in prev.iter_mut() {
            let raw = read_uvarint(comps_enc, &mut pos).ok_or("comps varint truncated")?;
            let v = i64::from(*p) + unzigzag(raw);
            let v = u32::try_from(v).map_err(|_| "component out of range")?;
            *p = v;
            comps.push(v);
        }
    }
    if pos != comps_enc.len() {
        return Err("comps encoding has trailing bytes");
    }

    let mut offsets = Vec::with_capacity(rows + 1);
    let mut acc = 0u64;
    let mut pos = 0usize;
    for i in 0..=rows {
        let delta = read_uvarint(offsets_enc, &mut pos).ok_or("offsets varint truncated")?;
        if i == 0 && delta != 0 {
            return Err("first offset not zero");
        }
        acc = acc.checked_add(delta).ok_or("offset overflow")?;
        if acc > texts_len as u64 {
            return Err("offset outside arena");
        }
        offsets.push(u32::try_from(acc).map_err(|_| "offset overflow")?);
    }
    if pos != offsets_enc.len() {
        return Err("offsets encoding has trailing bytes");
    }
    if acc != texts_len as u64 {
        return Err("last offset disagrees with arena length");
    }

    let arena = std::str::from_utf8(&bytes[texts.clone()]).map_err(|_| "texts not UTF-8")?;
    for &o in &offsets {
        if !arena.is_char_boundary(o as usize) {
            return Err("offset not on a char boundary");
        }
    }
    Ok(DecodedColumn {
        width,
        comps,
        offsets,
        texts,
    })
}

/// Test-only hooks for the integration suite: direct access to both
/// on-disk encoders and the version-dispatching decoder, so property
/// tests can drive the wire formats without a store.
#[doc(hidden)]
pub mod testing {
    /// Encode a column in the v1 (uncompressed) wire format.
    pub fn encode_column_v1(
        width: usize,
        comps: &[u32],
        offsets: &[u32],
        texts: &str,
        generation: u64,
    ) -> Vec<u8> {
        super::encode_v1(width, comps, offsets, texts, generation)
    }

    /// Encode a column in the v2 (delta/varint) wire format.
    pub fn encode_column_v2(
        width: usize,
        comps: &[u32],
        offsets: &[u32],
        texts: &str,
        generation: u64,
    ) -> Vec<u8> {
        super::encode_v2(width, comps, offsets, texts, generation)
    }

    /// Parse either wire format into owned `(comps, offsets, texts)`
    /// parts, or the validation failure.
    #[allow(clippy::type_complexity)]
    pub fn decode_column(
        bytes: &[u8],
        width: usize,
        generation: u64,
    ) -> Result<(Vec<u32>, Vec<u32>, String), &'static str> {
        let words = |r: std::ops::Range<usize>| {
            bytes[r]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<u32>>()
        };
        match super::parse(bytes, width, generation)? {
            super::ParsedSegment::V1(l) => Ok((
                words(l.comps.clone()),
                words(l.offsets.clone()),
                std::str::from_utf8(&bytes[l.texts.clone()])
                    .expect("validated arena")
                    .to_string(),
            )),
            super::ParsedSegment::V2(d) => {
                let texts = std::str::from_utf8(&bytes[d.texts.clone()])
                    .expect("validated arena")
                    .to_string();
                Ok((d.comps, d.offsets, texts))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMPS: &[u32] = &[1, 1, 1, 1, 2, 1];
    const OFFSETS: &[u32] = &[0, 2, 3];

    fn sample_v1() -> Vec<u8> {
        // Two rows of width 3, texts "ab" + "c".
        encode_v1(3, COMPS, OFFSETS, "abc", 7)
    }

    fn sample_v2() -> Vec<u8> {
        encode_v2(3, COMPS, OFFSETS, "abc", 7)
    }

    fn decoded(bytes: &[u8], width: usize, generation: u64) -> DecodedColumn {
        match parse(bytes, width, generation).unwrap() {
            ParsedSegment::V2(d) => d,
            ParsedSegment::V1(_) => panic!("expected a v2 segment"),
        }
    }

    #[test]
    fn v1_roundtrip_validates() {
        let bytes = sample_v1();
        let ParsedSegment::V1(layout) = parse(&bytes, 3, 7).unwrap() else {
            panic!("expected a v1 segment");
        };
        assert_eq!(layout.rows, 2);
        assert_eq!(layout.width, 3);
        assert_eq!(&bytes[layout.texts.clone()], b"abc");
        assert_eq!(layout.comps.len(), 24);
        assert_eq!(layout.offsets.len(), 12);
    }

    #[test]
    fn v2_roundtrip_decodes_identically() {
        let bytes = sample_v2();
        let d = decoded(&bytes, 3, 7);
        assert_eq!(d.width, 3);
        assert_eq!(d.comps, COMPS);
        assert_eq!(d.offsets, OFFSETS);
        assert_eq!(&bytes[d.texts.clone()], b"abc");
    }

    #[test]
    fn v2_is_smaller_than_v1() {
        // 48 rows of width 4 with unit-step ordinals: v1 spends 4 bytes
        // per word, v2 one byte per delta.
        let mut comps = Vec::new();
        let mut offsets = vec![0u32];
        let mut texts = String::new();
        for i in 0..48u32 {
            comps.extend_from_slice(&[1, 3, i + 1, 2]);
            texts.push('x');
            offsets.push(texts.len() as u32);
        }
        let v1 = encode_v1(4, &comps, &offsets, &texts, 1);
        let v2 = encode_v2(4, &comps, &offsets, &texts, 1);
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
        let d = decoded(&v2, 4, 1);
        assert_eq!(d.comps, comps);
        assert_eq!(d.offsets, offsets);
    }

    #[test]
    fn v2_handles_negative_component_deltas() {
        // Ordinal resets between rows (1.9 -> 2.1) produce negative
        // componentwise deltas; zigzag must carry them.
        let comps = &[1, 9, 2, 1];
        let bytes = encode_v2(2, comps, &[0, 1, 2], "ab", 0);
        assert_eq!(decoded(&bytes, 2, 0).comps, comps);
    }

    #[test]
    fn trailing_padding_tolerated() {
        for mut bytes in [sample_v1(), sample_v2()] {
            bytes.resize(bytes.len() + 100, 0);
            assert!(parse(&bytes, 3, 7).is_ok());
        }
    }

    #[test]
    fn stale_generation_rejected() {
        assert_eq!(parse(&sample_v1(), 3, 8), Err("stale generation"));
        assert_eq!(parse(&sample_v2(), 3, 8), Err("stale generation"));
    }

    #[test]
    fn wrong_width_rejected() {
        assert_eq!(
            parse(&sample_v1(), 2, 7),
            Err("row width disagrees with shape")
        );
        assert_eq!(
            parse(&sample_v2(), 2, 7),
            Err("row width disagrees with shape")
        );
    }

    #[test]
    fn unknown_magic_rejected() {
        let mut bytes = sample_v2();
        bytes[7] = b'9';
        assert_eq!(parse(&bytes, 3, 7), Err("bad magic"));
    }

    #[test]
    fn flipped_payload_bit_rejected() {
        for mut bytes in [sample_v1(), sample_v2()] {
            let last = bytes.len() - 1;
            bytes[last] ^= 1;
            assert_eq!(parse(&bytes, 3, 7), Err("payload checksum mismatch"));
        }
    }

    #[test]
    fn flipped_header_bit_rejected() {
        for mut bytes in [sample_v1(), sample_v2()] {
            bytes[16] ^= 1; // row count
            assert_eq!(parse(&bytes, 3, 7), Err("header checksum mismatch"));
        }
    }

    #[test]
    fn truncation_rejected() {
        for bytes in [sample_v1(), sample_v2()] {
            assert_eq!(
                parse(&bytes[..bytes.len() - 1], 3, 7),
                Err("payload truncated")
            );
            assert_eq!(parse(&bytes[..10], 3, 7), Err("shorter than header"));
        }
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        // Forge offsets [0, 3, 2]: recompute checksums so only the
        // monotonicity check can object. (v2 cannot even express a
        // backwards offset — its deltas are unsigned — so the encoder's
        // debug assertion is the only guard it needs.)
        let bytes = encode_v1(1, &[1, 2], &[0, 3, 2], "abc", 0);
        assert_eq!(parse(&bytes, 1, 0), Err("offsets not monotone"));
    }

    #[test]
    fn empty_column_roundtrips() {
        let v1 = encode_v1(2, &[], &[0], "", 3);
        let ParsedSegment::V1(layout) = parse(&v1, 2, 3).unwrap() else {
            panic!("expected v1");
        };
        assert_eq!(layout.rows, 0);
        assert!(layout.comps.is_empty());
        assert!(layout.texts.is_empty());
        let v2 = encode_v2(2, &[], &[0], "", 3);
        let d = decoded(&v2, 2, 3);
        assert!(d.comps.is_empty());
        assert_eq!(d.offsets, &[0]);
        assert!(d.texts.is_empty());
    }

    #[test]
    fn offset_past_arena_rejected() {
        let v1 = encode_v1(1, &[1], &[0, 9], "abc", 0);
        assert_eq!(parse(&v1, 1, 0), Err("offset outside arena"));
        let v2 = encode_v2(1, &[1], &[0, 9], "abc", 0);
        assert_eq!(parse(&v2, 1, 0), Err("offset outside arena"));
    }

    #[test]
    fn v1_payload_is_aligned_for_u32_reinterpretation() {
        assert_eq!(COLSEG_HEADER % 4, 0);
        let ParsedSegment::V1(layout) = parse(&sample_v1(), 3, 7).unwrap() else {
            panic!("expected v1");
        };
        assert_eq!(layout.comps.start % 4, 0);
        assert_eq!(layout.offsets.start % 4, 0);
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for d in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(u32::MAX),
            -i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn overlong_varint_rejected_not_panicking() {
        // Eleven continuation bytes exceed 64 bits of shift.
        let overlong = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_uvarint(&overlong, &mut pos), None);
        // Truncated continuation chain.
        let truncated = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&truncated, &mut pos), None);
    }
}

//! On-disk format for persisted [`TypeColumn`]s — one page-aligned
//! pagestore segment per type, written at shred time and mapped (or
//! copy-decoded) at open time so a cold reopen skips the `typeseq`
//! B+tree walk and Dewey decode entirely.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "XMCOL001"
//!      8     4  format version (1)
//!     12     4  row width (Dewey components per row)
//!     16     8  row count
//!     24     8  text arena length, bytes
//!     32     8  source typeseq generation
//!     40     8  FNV-1a64 of the payload
//!     48     8  FNV-1a64 of header bytes 0..48
//!     56     8  zero padding (keeps the payload 4-byte aligned *and*
//!               64-byte cache-line aligned within the page-aligned map)
//!     64     —  payload: rows×width u32 comps, rows+1 u32 offsets,
//!               UTF-8 texts
//! ```
//!
//! The generation a segment must carry to be believed is **per type**:
//! a full shred bumps the store-wide `meta["colgen"]`, while a mutation
//! (see [`crate::store::mutate`]) assigns the touched type a newer
//! per-type generation under `meta["tygen."‖TypeId]` and deletes that
//! type's segment — so after a 1%-node update only the touched types'
//! segments go stale and every other segment still opens by mmap. A
//! segment surviving from a superseded generation fails the check and
//! degrades to a lazy rebuild — as does any checksum, bounds,
//! monotonicity, or UTF-8 violation. Validation is total: a reader that
//! gets a [`SegmentLayout`] back may index the payload without further
//! checks.
//!
//! [`TypeColumn`]: crate::store::shredded::TypeColumn

use crate::model::types::TypeId;
use std::ops::Range;

/// Magic bytes opening every column segment.
pub const COLSEG_MAGIC: &[u8; 8] = b"XMCOL001";
/// Current format version.
pub const COLSEG_VERSION: u32 = 1;
/// Header size; the payload starts here.
pub const COLSEG_HEADER: usize = 64;

/// Name of the pagestore segment holding `t`'s column.
pub(crate) fn segment_name(t: TypeId) -> String {
    format!("col.{}", t.0)
}

/// 64-bit FNV-1a.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte ranges of a validated segment's payload sections, relative to
/// the start of the segment bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentLayout {
    /// Components per row.
    pub width: usize,
    /// Number of rows.
    pub rows: usize,
    /// `rows * width` u32 component words.
    pub comps: Range<usize>,
    /// `rows + 1` u32 arena offsets.
    pub offsets: Range<usize>,
    /// UTF-8 text arena.
    pub texts: Range<usize>,
}

/// Serialize one column into segment bytes.
pub(crate) fn encode(
    width: usize,
    comps: &[u32],
    offsets: &[u32],
    texts: &str,
    generation: u64,
) -> Vec<u8> {
    debug_assert!(width == 0 || comps.len().is_multiple_of(width));
    debug_assert_eq!(
        offsets.len(),
        comps.len().checked_div(width).unwrap_or(0) + 1
    );
    let rows = offsets.len() - 1;
    let payload_len = (comps.len() + offsets.len()) * 4 + texts.len();
    let mut out = Vec::with_capacity(COLSEG_HEADER + payload_len);
    out.extend_from_slice(COLSEG_MAGIC);
    out.extend_from_slice(&COLSEG_VERSION.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(texts.len() as u64).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    // Payload checksum; header checksum over everything before it.
    let mut payload = Vec::with_capacity(payload_len);
    for w in comps {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for o in offsets {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    payload.extend_from_slice(texts.as_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    let header_sum = fnv1a64(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    out.resize(COLSEG_HEADER, 0);
    out.extend_from_slice(&payload);
    out
}

fn u32_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Validate segment bytes against the expected row width and current
/// generation. Returns the payload layout, or the reason the segment
/// must fall back to a lazy rebuild. Every byte the layout exposes is
/// checked here — including offset monotonicity and text UTF-8 — so
/// readers can trust it unconditionally.
pub(crate) fn parse(
    bytes: &[u8],
    expect_width: usize,
    expect_generation: u64,
) -> Result<SegmentLayout, &'static str> {
    if bytes.len() < COLSEG_HEADER {
        return Err("shorter than header");
    }
    if &bytes[..8] != COLSEG_MAGIC {
        return Err("bad magic");
    }
    if u32_at(bytes, 8) != COLSEG_VERSION {
        return Err("unsupported format version");
    }
    if u64_at(bytes, 48) != fnv1a64(&bytes[..48]) {
        return Err("header checksum mismatch");
    }
    let width = u32_at(bytes, 12) as usize;
    let rows = u64_at(bytes, 16);
    let texts_len = u64_at(bytes, 24);
    let generation = u64_at(bytes, 32);
    if width != expect_width {
        return Err("row width disagrees with shape");
    }
    if generation != expect_generation {
        return Err("stale generation");
    }
    let rows = usize::try_from(rows).map_err(|_| "row count overflow")?;
    let texts_len = usize::try_from(texts_len).map_err(|_| "texts length overflow")?;
    let comps_len = rows
        .checked_mul(width)
        .and_then(|n| n.checked_mul(4))
        .ok_or("comps length overflow")?;
    let offsets_len = (rows + 1) * 4;
    let payload_len = comps_len
        .checked_add(offsets_len)
        .and_then(|n| n.checked_add(texts_len))
        .ok_or("payload length overflow")?;
    // Trailing page padding beyond the payload is fine; truncation is not.
    if bytes.len() < COLSEG_HEADER + payload_len {
        return Err("payload truncated");
    }
    let payload = &bytes[COLSEG_HEADER..COLSEG_HEADER + payload_len];
    if u64_at(bytes, 40) != fnv1a64(payload) {
        return Err("payload checksum mismatch");
    }
    let comps = COLSEG_HEADER..COLSEG_HEADER + comps_len;
    let offsets = comps.end..comps.end + offsets_len;
    let texts = offsets.end..offsets.end + texts_len;
    // Offsets must start at 0, end at texts_len, never decrease, and
    // every boundary must fall on a UTF-8 character boundary (checked
    // via the full-arena validation plus per-boundary is_char_boundary).
    let arena = std::str::from_utf8(&bytes[texts.clone()]).map_err(|_| "texts not UTF-8")?;
    let mut prev = 0u32;
    for i in 0..=rows {
        let o = u32_at(bytes, offsets.start + i * 4);
        if i == 0 && o != 0 {
            return Err("first offset not zero");
        }
        if o < prev {
            return Err("offsets not monotone");
        }
        if o as usize > texts_len || !arena.is_char_boundary(o as usize) {
            return Err("offset outside arena");
        }
        prev = o;
    }
    if prev as usize != texts_len {
        return Err("last offset disagrees with arena length");
    }
    Ok(SegmentLayout {
        width,
        rows,
        comps,
        offsets,
        texts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        // Two rows of width 3, texts "ab" + "c".
        encode(3, &[1, 1, 1, 1, 2, 1], &[0, 2, 3], "abc", 7)
    }

    #[test]
    fn roundtrip_validates() {
        let bytes = sample();
        let layout = parse(&bytes, 3, 7).unwrap();
        assert_eq!(layout.rows, 2);
        assert_eq!(layout.width, 3);
        assert_eq!(&bytes[layout.texts.clone()], b"abc");
        assert_eq!(layout.comps.len(), 24);
        assert_eq!(layout.offsets.len(), 12);
    }

    #[test]
    fn trailing_padding_tolerated() {
        let mut bytes = sample();
        bytes.resize(bytes.len() + 100, 0);
        assert!(parse(&bytes, 3, 7).is_ok());
    }

    #[test]
    fn stale_generation_rejected() {
        let bytes = sample();
        assert_eq!(parse(&bytes, 3, 8), Err("stale generation"));
    }

    #[test]
    fn wrong_width_rejected() {
        let bytes = sample();
        assert_eq!(parse(&bytes, 2, 7), Err("row width disagrees with shape"));
    }

    #[test]
    fn flipped_payload_bit_rejected() {
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert_eq!(parse(&bytes, 3, 7), Err("payload checksum mismatch"));
    }

    #[test]
    fn flipped_header_bit_rejected() {
        let mut bytes = sample();
        bytes[16] ^= 1; // row count
        assert_eq!(parse(&bytes, 3, 7), Err("header checksum mismatch"));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample();
        assert_eq!(
            parse(&bytes[..bytes.len() - 1], 3, 7),
            Err("payload truncated")
        );
        assert_eq!(parse(&bytes[..10], 3, 7), Err("shorter than header"));
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        // Forge offsets [0, 3, 2]: recompute checksums so only the
        // monotonicity check can object.
        let bytes = encode(1, &[1, 2], &[0, 3, 2], "abc", 0);
        assert_eq!(parse(&bytes, 1, 0), Err("offsets not monotone"));
    }

    #[test]
    fn empty_column_roundtrips() {
        let bytes = encode(2, &[], &[0], "", 3);
        let layout = parse(&bytes, 2, 3).unwrap();
        assert_eq!(layout.rows, 0);
        assert!(layout.comps.is_empty());
        assert!(layout.texts.is_empty());
    }

    #[test]
    fn offset_past_arena_rejected() {
        let bytes = encode(1, &[1], &[0, 9], "abc", 0);
        assert_eq!(parse(&bytes, 1, 0), Err("offset outside arena"));
    }

    #[test]
    fn payload_is_aligned_for_u32_reinterpretation() {
        assert_eq!(COLSEG_HEADER % 4, 0);
        let layout = parse(&sample(), 3, 7).unwrap();
        assert_eq!(layout.comps.start % 4, 0);
        assert_eq!(layout.offsets.start % 4, 0);
    }
}

//! The Render algorithm.
//!
//! Implements §VII's efficient strategy: closest joins are *pipelined
//! sort-merge* joins. Every type's instances are stored sorted in
//! document order, parents are visited in document order, so each target
//! edge keeps one monotone cursor ([`ClosestCursor`]) over the child
//! type's sequence — the whole transformation is a single pass over the
//! source lists, producing output in document order, streaming node by
//! node.
//!
//! The root level goes one step further: before any instance renders,
//! every direct source-backed edge of the root (element children,
//! attribute children, and RESTRICT filters) is resolved for the *whole*
//! root slice in one batched gallop pass over its child column
//! ([`ShreddedDoc::closest_group_batch`]), so per-instance guard
//! evaluation and child joins at the top level become plain indexed
//! lookups into the precomputed groups. The parallel driver
//! ([`crate::semantics::parallel`]) gets this per partition: each
//! column-range slice builds its own batch. Deeper edges keep their
//! monotone cursors; output is byte-identical either way.

use crate::error::MorphResult;
use crate::model::types::TypeId;
use crate::semantics::shape::{SId, Shape};
use crate::store::shredded::{ClosestCursor, ShreddedDoc, Snapshot, TypeColumn};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use xmorph_xml::dewey::Dewey;
use xmorph_xml::writer::StreamWriter;

/// Options controlling rendering.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Name of the synthetic document element wrapping the output
    /// (`None` emits the instance stream bare — only well-formed when
    /// exactly one instance renders).
    pub wrapper: Option<String>,
    /// Tag every rendered element with a `data-src` attribute holding
    /// its source Dewey number. Used by the theorem-validation tests to
    /// map output vertices back to source vertices.
    pub tag_source: bool,
    /// Use the pipelined sort-merge closest joins of §VII (default).
    /// `false` falls back to one B+tree prefix probe per parent — the
    /// naive strategy the paper's sort-merge remark improves on; kept
    /// for the ablation benchmark and cross-checking.
    pub pipelined: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            wrapper: Some("result".to_string()),
            tag_source: false,
            pipelined: true,
        }
    }
}

/// Where a rendered element anchors its closest joins: the nearest
/// enclosing *source-backed* instance.
#[derive(Clone, Copy)]
struct Anchor<'d> {
    dewey: &'d Dewey,
    type_id: TypeId,
}

/// Render the target shape against a shredded document. Pins a
/// [`Snapshot`] for the duration, so the whole pass reads one epoch
/// even if a writer publishes new column versions mid-render.
pub fn render(doc: &ShreddedDoc, target: &Shape, opts: &RenderOptions) -> MorphResult<String> {
    render_snapshot(&doc.snapshot(), target, opts)
}

/// [`render`] against an explicitly pinned snapshot — the form the
/// engine's query path uses so one `QueryRequest` reads one epoch
/// across analysis and rendering.
pub fn render_snapshot(
    snap: &Snapshot,
    target: &Shape,
    opts: &RenderOptions,
) -> MorphResult<String> {
    let mut out = String::new();
    render_with(snap, target, opts, |chunk| {
        out.push_str(chunk);
        Ok(())
    })?;
    Ok(out)
}

/// Streaming render into an [`std::io::Write`] sink — the paper's §VIII
/// mitigation: "stream the transformed data into a streaming XQuery
/// evaluation engine". Output leaves the process in document order,
/// flushed after every root instance, so peak memory is one instance
/// subtree rather than the whole result.
pub fn render_to_writer(
    doc: &ShreddedDoc,
    target: &Shape,
    opts: &RenderOptions,
    sink: &mut dyn std::io::Write,
) -> MorphResult<()> {
    render_with(&doc.snapshot(), target, opts, |chunk| {
        sink.write_all(chunk.as_bytes())
            .map_err(|_| crate::error::MorphError::Internal("sink write failed"))
    })
}

/// Core render loop: emits chunks (one per root instance, plus the
/// wrapper tags) to `emit`.
fn render_with(
    doc: &Snapshot,
    target: &Shape,
    opts: &RenderOptions,
    mut emit: impl FnMut(&str) -> MorphResult<()>,
) -> MorphResult<()> {
    let mut renderer = Renderer {
        doc,
        target,
        opts,
        cursors: HashMap::new(),
        root_batch: None,
    };
    let mut w = StreamWriter::with_capacity(4096);
    if let Some(wrapper) = &opts.wrapper {
        w.start(wrapper);
    }
    for &root in &target.roots {
        renderer.render_root_streaming(root, &mut w, &mut emit)?;
    }
    if opts.wrapper.is_some() {
        w.end();
    }
    emit(&w.finish())?;
    Ok(())
}

/// Render a contiguous run of one source-backed root's instances,
/// producing exactly the bytes the sequential renderer emits for those
/// instances (no wrapper). This is the unit of work of the parallel
/// driver in [`crate::semantics::parallel`]: the instance sequence of a
/// root type is split at group boundaries and each slice renders
/// independently against the same shredded document, so concatenating
/// the slices in order reproduces the sequential output byte for byte.
pub(crate) fn render_root_slice(
    doc: &Snapshot,
    target: &Shape,
    opts: &RenderOptions,
    root: SId,
    root_type: TypeId,
    col: &TypeColumn,
    rows: Range<usize>,
) -> MorphResult<String> {
    let mut renderer = Renderer {
        doc,
        target,
        opts,
        cursors: HashMap::new(),
        root_batch: opts
            .pipelined
            .then(|| RootBatch::build(doc, target, root, root_type, col, rows.clone())),
    };
    let mut w = StreamWriter::with_capacity(4096);
    let mut out = String::new();
    for i in rows {
        if let Some(b) = renderer.root_batch.as_mut() {
            b.current = i;
        }
        let dewey = col.dewey(i);
        renderer.render_instance(root, &dewey, root_type, col.text(i), &mut w)?;
        out.push_str(&w.drain());
    }
    Ok(out)
}

/// Render a NEW (non-source-backed) root once, as the sequential
/// renderer does. NEW roots instantiate per document, not per group, so
/// the parallel driver runs them on a single thread.
pub(crate) fn render_root_plain(
    doc: &Snapshot,
    target: &Shape,
    opts: &RenderOptions,
    root: SId,
) -> MorphResult<String> {
    let mut renderer = Renderer {
        doc,
        target,
        opts,
        cursors: HashMap::new(),
        root_batch: None,
    };
    let mut w = StreamWriter::with_capacity(4096);
    renderer.render_new(root, None, &mut w)?;
    Ok(w.drain())
}

/// A resolved closest-join group. The pipelined path hands back a row
/// range into the (shared) child column — nothing is copied per parent;
/// the ablation path carries the owned pairs its B+tree probe built.
enum Joined {
    Columnar(Arc<TypeColumn>, Range<usize>),
    Owned(Vec<(Dewey, String)>),
}

impl Joined {
    fn len(&self) -> usize {
        match self {
            Joined::Columnar(_, r) => r.len(),
            Joined::Owned(v) => v.len(),
        }
    }

    fn dewey(&self, i: usize) -> Dewey {
        match self {
            Joined::Columnar(c, r) => c.dewey(r.start + i),
            Joined::Owned(v) => v[i].0.clone(),
        }
    }

    fn text(&self, i: usize) -> &str {
        match self {
            Joined::Columnar(c, r) => c.text(r.start + i),
            Joined::Owned(v) => &v[i].1,
        }
    }
}

/// The batched closest-join groups of one root slice: for every direct
/// source-backed edge of the root node (element children, attribute
/// children, and RESTRICT filters), the child column and one
/// precomputed row range per root instance in the slice — produced by a
/// single forward gallop pass per edge before rendering starts. Each
/// target node appears at exactly one place in the shape tree, so an
/// edge in `groups` is only ever joined against a root-instance anchor,
/// and `current` (maintained by the root loops) names which one.
struct RootBatch {
    root_type: TypeId,
    /// Row index of the first root instance in the slice.
    lo: usize,
    /// Row index of the instance currently rendering.
    current: usize,
    /// Per direct edge: child column plus one group range per instance.
    groups: HashMap<SId, (Arc<TypeColumn>, Vec<Range<usize>>)>,
}

impl RootBatch {
    fn build(
        doc: &Snapshot,
        target: &Shape,
        root: SId,
        root_type: TypeId,
        col: &TypeColumn,
        rows: Range<usize>,
    ) -> RootBatch {
        let node = &target.nodes[root];
        let mut groups = HashMap::new();
        for &c in node.children.iter().chain(node.filters.iter()) {
            if let Some(ct) = target.nodes[c].base {
                // Unrelated pairs stay absent: the per-instance paths
                // fall back to their probe, which answers "no group"
                // the same way.
                if let Some(batch) = doc.closest_group_batch(col, rows.clone(), root_type, ct) {
                    groups.insert(c, batch);
                }
            }
        }
        RootBatch {
            root_type,
            lo: rows.start,
            current: rows.start,
            groups,
        }
    }

    /// The precomputed group of edge `node` for the currently rendering
    /// instance, when `anchor` is that instance.
    fn group(&self, node: SId, anchor_type: TypeId) -> Option<(&Arc<TypeColumn>, Range<usize>)> {
        if anchor_type != self.root_type {
            return None;
        }
        let (col, ranges) = self.groups.get(&node)?;
        Some((col, ranges[self.current - self.lo].clone()))
    }
}

struct Renderer<'a> {
    doc: &'a Snapshot,
    target: &'a Shape,
    opts: &'a RenderOptions,
    /// One pipelined join cursor per (target node, anchor type) edge.
    cursors: HashMap<(SId, TypeId), ClosestCursor>,
    /// Batched groups for the root currently rendering (pipelined mode
    /// with a source-backed root only).
    root_batch: Option<RootBatch>,
}

impl<'a> Renderer<'a> {
    /// Render all instances of a root, draining the writer to `emit`
    /// after each instance so output streams in document order.
    fn render_root_streaming(
        &mut self,
        root: SId,
        w: &mut StreamWriter,
        emit: &mut impl FnMut(&str) -> MorphResult<()>,
    ) -> MorphResult<()> {
        match self.target.nodes[root].base {
            Some(t) => {
                let col = self.doc.column(t);
                self.root_batch = self
                    .opts
                    .pipelined
                    .then(|| RootBatch::build(self.doc, self.target, root, t, &col, 0..col.len()));
                for i in 0..col.len() {
                    if let Some(b) = self.root_batch.as_mut() {
                        b.current = i;
                    }
                    let dewey = col.dewey(i);
                    self.render_instance(root, &dewey, t, col.text(i), w)?;
                    emit(&w.drain())?;
                }
                self.root_batch = None;
            }
            None => {
                self.render_new(root, None, w)?;
                emit(&w.drain())?;
            }
        }
        Ok(())
    }

    /// Pull the closest children of `anchor` for target edge `node`
    /// through the edge's pipelined cursor. Returns an owned handle (the
    /// recursion below re-enters the cursor map), but the group contents
    /// stay in the shared column.
    fn joined(&mut self, node: SId, anchor: Anchor<'_>, child_type: TypeId) -> Joined {
        if !self.opts.pipelined {
            return Joined::Owned(self.doc.closest_children_btree(
                anchor.dewey,
                anchor.type_id,
                child_type,
            ));
        }
        // Root-level edges were resolved up front for the whole slice.
        if let Some(batch) = &self.root_batch {
            if let Some((col, range)) = batch.group(node, anchor.type_id) {
                return Joined::Columnar(Arc::clone(col), range);
            }
        }
        let key = (node, anchor.type_id);
        if !self.cursors.contains_key(&key) {
            match self.doc.closest_cursor(anchor.type_id, child_type) {
                Some(c) => {
                    self.cursors.insert(key, c);
                }
                None => return Joined::Owned(Vec::new()),
            }
        }
        let cursor = self.cursors.get_mut(&key).expect("cursor just ensured");
        let range = cursor.group_for(anchor.dewey);
        Joined::Columnar(Arc::clone(cursor.column()), range)
    }

    /// Render one instance of a source-backed target node.
    fn render_instance(
        &mut self,
        node: SId,
        dewey: &Dewey,
        type_id: TypeId,
        text: &str,
        w: &mut StreamWriter,
    ) -> MorphResult<()> {
        let anchor = Anchor { dewey, type_id };
        // RESTRICT: the instance must have a closest match for every
        // filter.
        for &f in &self.target.nodes[node].filters {
            if !self.passes_filter(f, anchor) {
                return Ok(());
            }
        }
        let name = self.target.nodes[node].name.clone();
        let is_attr = name.starts_with('@');
        if is_attr {
            // An attribute type promoted to an element: strip the '@'.
            w.start(name.trim_start_matches('@'));
        } else {
            w.start(&name);
        }
        // Attribute children first (they must precede content).
        let children: Vec<SId> = self.target.nodes[node].children.clone();
        for &c in &children {
            let cname = self.target.nodes[c].name.clone();
            if cname.starts_with('@') {
                if let Some(ct) = self.target.nodes[c].base {
                    let group = self.joined(c, anchor, ct);
                    for i in 0..group.len() {
                        w.attr(cname.trim_start_matches('@'), group.text(i));
                    }
                }
            }
        }
        if self.opts.tag_source {
            w.attr("data-src", &dewey.to_string());
        }
        w.text(text);
        for &c in &children {
            if !self.target.nodes[c].name.starts_with('@') {
                self.render_child(c, anchor, w)?;
            }
        }
        w.end();
        Ok(())
    }

    /// Render a child target node relative to an anchored parent
    /// instance.
    fn render_child(
        &mut self,
        node: SId,
        anchor: Anchor<'_>,
        w: &mut StreamWriter,
    ) -> MorphResult<()> {
        match self.target.nodes[node].base {
            Some(ct) => {
                let group = self.joined(node, anchor, ct);
                for i in 0..group.len() {
                    let dewey = group.dewey(i);
                    self.render_instance(node, &dewey, ct, group.text(i), w)?;
                }
                Ok(())
            }
            None => self.render_new(node, Some(anchor), w),
        }
    }

    /// Render a NEW target node.
    ///
    /// Paper-guided interpretation (the paper leaves NEW rendering
    /// implicit; see DESIGN.md): a NEW node instantiates once per
    /// instance of its first source-backed child — "wraps each author in
    /// a scribe" — with the other children joined relative to that
    /// instance. With an enclosing anchor but no source-backed child, it
    /// instantiates once per parent instance; as a childless root it
    /// renders a single empty element.
    fn render_new(
        &mut self,
        node: SId,
        anchor: Option<Anchor<'_>>,
        w: &mut StreamWriter,
    ) -> MorphResult<()> {
        let name = self.target.nodes[node].name.clone();
        let children: Vec<SId> = self.target.nodes[node].children.clone();
        let primary = children
            .iter()
            .copied()
            .find(|&c| self.target.nodes[c].base.is_some());
        match primary {
            Some(primary_child) => {
                let pt = self.target.nodes[primary_child]
                    .base
                    .expect("source-backed child");
                let instances = match anchor {
                    Some(a) => self.joined(primary_child, a, pt),
                    None => {
                        let col = self.doc.column(pt);
                        let n = col.len();
                        Joined::Columnar(col, 0..n)
                    }
                };
                for i in 0..instances.len() {
                    let dewey = instances.dewey(i);
                    w.start(&name);
                    self.render_instance(primary_child, &dewey, pt, instances.text(i), w)?;
                    let inner = Anchor {
                        dewey: &dewey,
                        type_id: pt,
                    };
                    for &c in &children {
                        if c != primary_child {
                            self.render_child(c, inner, w)?;
                        }
                    }
                    w.end();
                }
            }
            None => {
                // No source-backed child: one wrapper (per parent
                // instance — the caller already iterates parents).
                w.start(&name);
                if let Some(a) = anchor {
                    for &c in &children {
                        self.render_child(c, a, w)?;
                    }
                } else {
                    for &c in &children {
                        if self.target.nodes[c].base.is_none() {
                            self.render_new(c, None, w)?;
                        }
                    }
                }
                w.end();
            }
        }
        Ok(())
    }

    /// Recursive RESTRICT filter check: some closest instance of the
    /// filter type exists and itself satisfies the filter's children.
    /// Root-level filters read their precomputed batch group; deeper
    /// filters use direct prefix-scan joins (they probe out of document
    /// order, so the pipelined cursors do not apply).
    fn passes_filter(&self, filter: SId, anchor: Anchor<'_>) -> bool {
        let Some(ft) = self.target.nodes[filter].base else {
            // A NEW filter can never match data.
            return false;
        };
        let fnode = &self.target.nodes[filter];
        let batched = self
            .root_batch
            .as_ref()
            .and_then(|b| b.group(filter, anchor.type_id))
            .map(|(col, range)| (Arc::clone(col), range));
        if fnode.children.is_empty() && fnode.filters.is_empty() {
            // A leaf filter is a pure existence test — probe the prefix
            // range (or read the batched group), materialize nothing.
            return match &batched {
                Some((_, range)) => !range.is_empty(),
                None => self.doc.has_closest_child(anchor.dewey, anchor.type_id, ft),
            };
        }
        let Some((col, range)) =
            batched.or_else(|| self.doc.closest_group(anchor.dewey, anchor.type_id, ft))
        else {
            return false;
        };
        range.into_iter().any(|i| {
            let dewey = col.dewey(i);
            let inner = Anchor {
                dewey: &dewey,
                type_id: ft,
            };
            fnode
                .children
                .iter()
                .chain(fnode.filters.iter())
                .all(|&g| self.passes_filter(g, inner))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower;
    use crate::lang::parse;
    use crate::semantics::eval::{eval_guard, EvalCtx};
    use xmorph_pagestore::Store;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    const FIG1B: &str = "<data>\
        <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
        <publisher><name>V</name><book><title>Y</title><author><name>Tim</name></author></book></publisher>\
        </data>";

    fn run(guard: &str, xml: &str) -> String {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        let src = Shape::from_adorned(doc.shape());
        let mut ctx = EvalCtx::new(&doc);
        let op = lower(&parse(guard).unwrap());
        let tgt = eval_guard(&op, &src, &mut ctx).unwrap();
        render(&doc, &tgt, &RenderOptions::default()).unwrap()
    }

    #[test]
    fn paper_fig2_shape_from_fig1a() {
        // The §I guard on Fig 1(a): authors with their name and books.
        let out = run("MORPH author [ name book [ title ] ]", FIG1A);
        assert_eq!(
            out,
            "<result>\
             <author><name>Tim</name><book><title>X</title></book></author>\
             <author><name>Tim</name><book><title>Y</title></book></author>\
             </result>"
        );
    }

    #[test]
    fn fig1a_and_fig1b_transform_identically() {
        // "Data instances (a) and (b) are (logically) transformed to the
        // same instance" (§I, Fig. 2).
        let guard = "MORPH author [ name book [ title ] ]";
        assert_eq!(run(guard, FIG1A), run(guard, FIG1B));
    }

    #[test]
    fn morph_root_only() {
        let out = run("MORPH title", FIG1A);
        assert_eq!(out, "<result><title>X</title><title>Y</title></result>");
    }

    #[test]
    fn children_marker_renders_source_children() {
        let out = run("MORPH book [*]", FIG1A);
        assert!(
            out.contains("<book><title>X</title><author/><publisher/></book>"),
            "{out}"
        );
    }

    #[test]
    fn descendants_marker_renders_subtrees() {
        let out = run("MORPH book [**]", FIG1A);
        assert!(
            out.contains("<book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>"),
            "{out}"
        );
    }

    #[test]
    fn new_wraps_each_primary_child() {
        // "wraps each author in a scribe".
        let out = run("MORPH (NEW scribe) [ author [ name ] ]", FIG1A);
        assert_eq!(
            out,
            "<result>\
             <scribe><author><name>Tim</name></author></scribe>\
             <scribe><author><name>Tim</name></author></scribe>\
             </result>"
        );
    }

    #[test]
    fn restrict_filters_instances() {
        let xml =
            "<d><book><award>w</award><title>A</title></book><book><title>B</title></book></d>";
        let out = run(
            "CAST-NARROWING MORPH (RESTRICT book [ award ]) [ title ]",
            xml,
        );
        assert_eq!(out, "<result><book><title>A</title></book></result>");
    }

    #[test]
    fn restrict_shows_only_root_type() {
        // The filter type itself must not render.
        let xml = "<d><book><award>w</award><title>A</title></book></d>";
        let out = run("MORPH (RESTRICT book [ award ]) [ title ]", xml);
        assert!(!out.contains("award"), "{out}");
    }

    #[test]
    fn translate_renames_output_elements() {
        let out = run("MORPH author [ name ] | TRANSLATE author -> writer", FIG1A);
        assert!(out.contains("<writer><name>Tim</name></writer>"), "{out}");
        assert!(!out.contains("<author>"), "{out}");
    }

    #[test]
    fn widening_guard_duplicates_titles() {
        // §I Fig. 3 on instance (c): titles duplicated near publishers.
        let fig1c = "<data><author><name>Tim</name>\
            <book><title>X</title><publisher><name>W</name></publisher></book>\
            <book><title>Y</title><publisher><name>V</name></publisher></book>\
            </author></data>";
        let out = run(
            "CAST-WIDENING MORPH author [ !title name publisher [ name ] ]",
            fig1c,
        );
        // The single author gathers both titles and both publishers.
        assert_eq!(out.matches("<title>").count(), 2, "{out}");
        assert_eq!(out.matches("<publisher>").count(), 2, "{out}");
    }

    #[test]
    fn attribute_type_renders_as_attribute() {
        let xml = r#"<d><item id="7"><v>x</v></item><item id="8"><v>y</v></item></d>"#;
        let out = run("MORPH item [ @id v ]", xml);
        assert_eq!(
            out,
            r#"<result><item id="7"><v>x</v></item><item id="8"><v>y</v></item></result>"#
        );
    }

    #[test]
    fn attribute_promoted_to_element() {
        // Morphing the attribute type to the root renders it as an
        // element (the '@' is stripped).
        let xml = r#"<d><item id="7"/></d>"#;
        let out = run("MORPH @id", xml);
        assert_eq!(out, "<result><id>7</id></result>");
    }

    #[test]
    fn tag_source_option() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let src = Shape::from_adorned(doc.shape());
        let mut ctx = EvalCtx::new(&doc);
        let op = lower(&parse("MORPH title").unwrap());
        let tgt = eval_guard(&op, &src, &mut ctx).unwrap();
        let out = render(
            &doc,
            &tgt,
            &RenderOptions {
                wrapper: Some("r".into()),
                tag_source: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            out.contains(r#"<title data-src="1.1.1">X</title>"#),
            "{out}"
        );
    }

    #[test]
    fn text_content_is_escaped() {
        let xml = "<d><m>a &lt; b &amp; c</m></d>";
        let out = run("MORPH m", xml);
        assert!(out.contains("a &lt; b &amp; c"), "{out}");
    }

    #[test]
    fn streaming_render_matches_buffered() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        let src = Shape::from_adorned(doc.shape());
        let mut ctx = EvalCtx::new(&doc);
        let op = lower(&parse("MORPH author [ name book [ title ] ]").unwrap());
        let tgt = eval_guard(&op, &src, &mut ctx).unwrap();
        let buffered = render(&doc, &tgt, &RenderOptions::default()).unwrap();
        let mut sink: Vec<u8> = Vec::new();
        render_to_writer(&doc, &tgt, &RenderOptions::default(), &mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), buffered);
    }

    #[test]
    fn streaming_render_empty_result() {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, "<d><a/></d>").unwrap();
        let src = Shape::from_adorned(doc.shape());
        let mut ctx = EvalCtx::new(&doc);
        // RESTRICT that matches nothing yields an empty (self-closed)
        // wrapper.
        let op = lower(&parse("CAST MORPH a").unwrap());
        let tgt = eval_guard(&op, &src, &mut ctx).unwrap();
        let mut sink: Vec<u8> = Vec::new();
        render_to_writer(&doc, &tgt, &RenderOptions::default(), &mut sink).unwrap();
        let out = String::from_utf8(sink).unwrap();
        assert_eq!(out, "<result><a/></result>");
    }

    #[test]
    fn output_reparses_as_xml() {
        let out = run(
            "MORPH author [ name book [ title publisher [ name ] ] ]",
            FIG1B,
        );
        let doc = xmorph_xml::dom::Document::parse_str(&out).unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), "result");
    }

    #[test]
    fn duplicated_fragments_get_separate_cursors() {
        // Two books share a publisher name prefix group: rendering must
        // revisit the same child group for siblings (group cache) and
        // advance correctly across parents (monotone cursor).
        let xml = "<d>\
            <book><t>A</t><t>B</t><p>1</p></book>\
            <book><t>C</t><p>2</p></book>\
            <book><p>3</p></book>\
            </d>";
        let out = run("MORPH p [ t ]", xml);
        assert_eq!(
            out,
            "<result><p>1<t>A</t><t>B</t></p><p>2<t>C</t></p><p>3</p></result>"
        );
    }

    #[test]
    fn deep_join_chain_streams() {
        // A three-level chain exercises nested cursors on one pass.
        let xml = "<lib>\
            <shelf><row><slot>a</slot><slot>b</slot></row></shelf>\
            <shelf><row><slot>c</slot></row><row><slot>d</slot></row></shelf>\
            </lib>";
        let out = run("MORPH shelf [ row [ slot ] ]", xml);
        assert_eq!(
            out,
            "<result>\
             <shelf><row><slot>a</slot><slot>b</slot></row></shelf>\
             <shelf><row><slot>c</slot></row><row><slot>d</slot></row></shelf>\
             </result>"
        );
    }
}

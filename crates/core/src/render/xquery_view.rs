//! Architecture #2 of §VIII: *"Render the query guard as an XQuery view
//! and use XQuery view rewriting to answer the query."*
//!
//! A guard whose target edges all navigate *downward* in the source shape
//! (each child's source type is a path descendant of its parent's) can be
//! compiled to an ordinary nested-FLWOR XQuery program over the original
//! document — no shredding, no closest joins. The paper's caveats hold
//! verbatim and are surfaced as errors here:
//!
//! * closest joins that move *across* or *up* the source shape (the
//!   interesting shape-polymorphic cases, e.g. hoisting `author` above
//!   `book` when books contain authors) are not expressible with
//!   child/descendant navigation — [`ViewError::NotNavigable`];
//! * "the source values must be teased apart and reconstructed to the
//!   target shape in the return clause piece-by-piece": interior target
//!   elements rebuild their content from constructors, so any *direct*
//!   text an interior source element carried is not reproduced (leaf
//!   values come through `string()`).
//!
//! The result is "a long, complex XQuery program" whose evaluation the
//! paper found at best modestly faster than physical transformation —
//! the `ablation` benchmark reproduces that comparison.

use crate::semantics::shape::{SId, Shape};
use crate::store::shredded::ShreddedDoc;
use std::fmt;

/// Why a guard could not be rendered as an XQuery view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// A target edge needs a closest join that plain downward navigation
    /// cannot express.
    NotNavigable {
        /// Dotted source type of the parent.
        parent: String,
        /// Dotted source type of the child.
        child: String,
    },
    /// A construct with no XQuery-view equivalent in this compiler.
    Unsupported(&'static str),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::NotNavigable { parent, child } => write!(
                f,
                "target edge {parent} -> {child} requires a closest join; \
                 it cannot be navigated downward in the source (use the \
                 physical transformation instead)"
            ),
            ViewError::Unsupported(what) => {
                write!(f, "guard construct has no XQuery view: {what}")
            }
        }
    }
}

/// Compile a target shape into an XQuery view over `doc(doc_name)`.
/// Succeeds only for fully downward-navigable guards.
pub fn guard_to_xquery_view(
    doc: &ShreddedDoc,
    target: &Shape,
    doc_name: &str,
) -> Result<String, ViewError> {
    let mut body = String::new();
    for (i, &root) in target.roots.iter().enumerate() {
        if i > 0 {
            body.push(' ');
        }
        let mut var_counter = 0usize;
        body.push_str(&compile_root(
            doc,
            target,
            root,
            doc_name,
            &mut var_counter,
        )?);
    }
    Ok(format!("<result>{{{body}}}</result>"))
}

/// Relative downward path (source element names) from `parent` to
/// `child`, or `None` when child is not a strict path descendant.
fn relative_path(
    doc: &ShreddedDoc,
    parent: SId,
    child: SId,
    target: &Shape,
) -> Option<Vec<String>> {
    let pb = target.nodes[parent].base?;
    let cb = target.nodes[child].base?;
    let pp = doc.types().path(pb);
    let cp = doc.types().path(cb);
    if cp.len() <= pp.len() || cp[..pp.len()] != *pp {
        return None;
    }
    Some(cp[pp.len()..].to_vec())
}

fn compile_root(
    doc: &ShreddedDoc,
    target: &Shape,
    root: SId,
    doc_name: &str,
    var_counter: &mut usize,
) -> Result<String, ViewError> {
    let node = &target.nodes[root];
    let Some(base) = node.base else {
        return Err(ViewError::Unsupported("NEW types"));
    };
    let path = doc.types().path(base).join("/");
    let var = fresh(var_counter);
    let condition = filter_condition(doc, target, root, &var)?;
    let inner = compile_element(doc, target, root, &var, var_counter)?;
    Ok(format!(
        "for ${var} in doc(\"{doc_name}\")/{path}{condition} return {inner}"
    ))
}

fn fresh(counter: &mut usize) -> String {
    let v = format!("v{counter}");
    *counter += 1;
    v
}

/// A ` where ...` clause for the node's RESTRICT filters (empty when
/// unfiltered). Only single-level navigable filters are expressible.
fn filter_condition(
    doc: &ShreddedDoc,
    target: &Shape,
    node: SId,
    var: &str,
) -> Result<String, ViewError> {
    if target.nodes[node].filters.is_empty() {
        return Ok(String::new());
    }
    let mut parts = Vec::new();
    for &f in &target.nodes[node].filters {
        let rel = relative_path(doc, node, f, target).ok_or_else(|| ViewError::NotNavigable {
            parent: target.nodes[node].name.clone(),
            child: target.nodes[f].name.clone(),
        })?;
        if !target.nodes[f].children.is_empty() || !target.nodes[f].filters.is_empty() {
            return Err(ViewError::Unsupported("nested RESTRICT filters"));
        }
        parts.push(format!("count(${var}/{}) > 0", rel.join("/")));
    }
    Ok(format!(" where {}", parts.join(" and ")))
}

/// Emit the element constructor for one bound target node.
fn compile_element(
    doc: &ShreddedDoc,
    target: &Shape,
    node: SId,
    var: &str,
    var_counter: &mut usize,
) -> Result<String, ViewError> {
    let shape_node = &target.nodes[node];
    if shape_node.name.starts_with('@') {
        return Err(ViewError::Unsupported(
            "attribute targets (constructors cannot build dynamic attributes)",
        ));
    }
    let mut content = String::new();
    if shape_node.children.is_empty() {
        // Leaf: the element's string value.
        content.push_str(&format!("{{string(${var})}}"));
    } else {
        for &c in &shape_node.children {
            let rel =
                relative_path(doc, node, c, target).ok_or_else(|| ViewError::NotNavigable {
                    parent: doc
                        .types()
                        .path(shape_node.base.expect("bound node"))
                        .join("."),
                    child: target.nodes[c]
                        .base
                        .map(|b| doc.types().path(b).join("."))
                        .unwrap_or_else(|| target.nodes[c].name.clone()),
                })?;
            let child_var = fresh(var_counter);
            let condition = filter_condition(doc, target, c, &child_var)?;
            let inner = compile_element(doc, target, c, &child_var, var_counter)?;
            content.push_str(&format!(
                "{{for ${child_var} in ${var}/{}{condition} return {inner}}}",
                rel.join("/")
            ));
        }
    }
    Ok(format!(
        "<{}>{content}</{}>",
        shape_node.name, shape_node.name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Guard;
    use xmorph_pagestore::Store;
    use xmorph_xqlite::XqliteDb;

    const NESTED: &str = "<lib>\
        <shelf><book><title>A</title><author><name>X</name></author></book>\
               <book><title>B</title><author><name>Y</name></author></book></shelf>\
        <shelf><book><title>C</title><author><name>Z</name></author></book></shelf>\
        </lib>";

    fn view_for(guard: &str, xml: &str) -> Result<String, ViewError> {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        let analysis = Guard::parse(guard).unwrap().analyze(&doc).unwrap();
        guard_to_xquery_view(&doc, &analysis.target, "doc.xml")
    }

    /// The two architectures must agree on downward-navigable guards.
    fn assert_equivalent(guard: &str, xml: &str) {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        let parsed = Guard::parse(guard).unwrap();
        let analysis = parsed.analyze(&doc).unwrap();
        let physical = crate::render::render(
            &doc,
            &analysis.target,
            &crate::render::RenderOptions::default(),
        )
        .unwrap();
        let view = guard_to_xquery_view(&doc, &analysis.target, "doc.xml").unwrap();
        let db = XqliteDb::in_memory();
        db.store_document("doc.xml", xml).unwrap();
        let via_view = db.query(&view).unwrap();
        assert_eq!(via_view, physical, "guard {guard}\nview {view}");
    }

    #[test]
    fn navigable_guards_compile_and_agree() {
        assert_equivalent("MORPH shelf [ book [ title ] ]", NESTED);
        assert_equivalent("MORPH book [ title name ]", NESTED);
        assert_equivalent("CAST MORPH lib [ title ]", NESTED);
        assert_equivalent("MORPH author [ name ]", NESTED);
    }

    #[test]
    fn restrict_filters_compile_to_where() {
        let xml = "<d>\
            <book><award>w</award><title>A</title></book>\
            <book><title>B</title></book>\
            </d>";
        assert_equivalent("CAST MORPH (RESTRICT book [ award ]) [ title ]", xml);
        let view = view_for("CAST MORPH (RESTRICT book [ award ]) [ title ]", xml).unwrap();
        assert!(view.contains("where count("), "{view}");
    }

    #[test]
    fn upward_join_is_not_navigable() {
        // The §I headline guard: author hoisted above book. A view
        // cannot express this — exactly the paper's point about why the
        // physical transformation is the general architecture.
        let err = view_for("MORPH author [ name book.title ]", NESTED).unwrap_err();
        assert!(matches!(err, ViewError::NotNavigable { .. }), "{err}");
    }

    #[test]
    fn new_types_unsupported() {
        let err = view_for("MORPH (NEW x) [ book [ title ] ]", NESTED).unwrap_err();
        assert!(matches!(err, ViewError::Unsupported(_)), "{err}");
    }

    #[test]
    fn view_is_a_long_complex_program() {
        // "Rendering to XQuery often creates a long, complex XQuery
        // program" — one nested FLWOR per target edge.
        let view = view_for("MORPH shelf [ book [ title name ] ]", NESTED).unwrap();
        assert_eq!(view.matches("for $").count(), 4, "{view}");
    }

    #[test]
    fn error_messages_name_the_edge() {
        let err = view_for("MORPH title [ name ]", NESTED).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("closest join"), "{msg}");
    }
}

//! Rendering a transformed shape to XML (§VII, Fig. 7).
//!
//! The target shape is walked top-down; at each shape edge the *closest
//! join* pairs a parent instance with the source instances of the child's
//! type that are closest to it. Because a type's instances all share one
//! Dewey depth, the join is a single prefix scan (see
//! [`crate::store::shredded::ShreddedDoc::closest_children`]); output is
//! produced in document order and streamed. The read cost is linear in
//! the size of the output; the write cost is quadratic in the worst case
//! because snippets of source data may be duplicated — both exactly as
//! the paper states.

pub mod renderer;
pub mod xquery_view;

pub use renderer::{render, render_snapshot, render_to_writer, RenderOptions};
pub use xquery_view::{guard_to_xquery_view, ViewError};

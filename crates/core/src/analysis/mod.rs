//! Potential information-loss analysis (§V): the predicted adorned shape,
//! Theorems 1 and 2, and guard classification.

pub mod loss;
pub mod quantify;

pub use loss::analyze_loss;
pub use quantify::{quantify, QuantifiedLoss, TypeQuantity};

//! Quantified information loss — the paper's third future-work item
//! (§X): *"how to quantify the amount of potential information loss. We
//! articulated four 'coarse' kinds of information loss, but these could
//! be refined, e.g., the transformation manufactures 30% new
//! information."*
//!
//! Where the Theorem 1/2 analysis is static (shape-only, instant), this
//! module measures the *actual* loss of a transformation on a concrete
//! document: it renders with source tagging, then counts — per source
//! type — how many instances were dropped and how many times instances
//! were duplicated. It is a diagnostic: cost is a full transformation
//! plus a parse of the output.
//!
//! Note the semantics difference from §V-A's reversibility: the theorems
//! compare closest-edge *sets*, while these counts are *bags*. A
//! strongly-typed guard guarantees `dropped == 0`, but its duplication
//! factor may exceed 1 — e.g. a title shared by two authors renders
//! under both, reusing closest edges that already existed in the source.

use crate::error::{MorphError, MorphResult};
use crate::render::{render, RenderOptions};
use crate::semantics::shape::Shape;
use crate::store::shredded::ShreddedDoc;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xmorph_xml::dewey::Dewey;
use xmorph_xml::dom::Document;

/// Measured per-type quantities of one transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeQuantity {
    /// Dotted source type name.
    pub type_name: String,
    /// Instances in the source.
    pub source_instances: u64,
    /// Distinct source instances that appear in the output.
    pub rendered_unique: u64,
    /// Total appearances in the output (≥ `rendered_unique` when
    /// duplicated).
    pub rendered_total: u64,
}

impl TypeQuantity {
    /// Source instances that do not appear in the output.
    pub fn dropped(&self) -> u64 {
        self.source_instances.saturating_sub(self.rendered_unique)
    }

    /// Fraction of source instances dropped (0.0 when none existed).
    pub fn dropped_fraction(&self) -> f64 {
        if self.source_instances == 0 {
            return 0.0;
        }
        self.dropped() as f64 / self.source_instances as f64
    }

    /// Output copies manufactured beyond the first appearance.
    pub fn manufactured(&self) -> u64 {
        self.rendered_total.saturating_sub(self.rendered_unique)
    }

    /// Average output copies per appearing instance (1.0 = no
    /// duplication).
    pub fn duplication_factor(&self) -> f64 {
        if self.rendered_unique == 0 {
            return 0.0;
        }
        self.rendered_total as f64 / self.rendered_unique as f64
    }
}

/// Measured information loss of a whole transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantifiedLoss {
    /// One entry per source type that the transformation retains,
    /// ordered by type name.
    pub per_type: Vec<TypeQuantity>,
}

impl QuantifiedLoss {
    /// Overall fraction of retained-type source instances dropped.
    pub fn dropped_fraction(&self) -> f64 {
        let src: u64 = self.per_type.iter().map(|q| q.source_instances).sum();
        let dropped: u64 = self.per_type.iter().map(|q| q.dropped()).sum();
        if src == 0 {
            return 0.0;
        }
        dropped as f64 / src as f64
    }

    /// Overall fraction of output instances that are manufactured
    /// duplicates — the paper's "manufactures 30% new information".
    pub fn manufactured_fraction(&self) -> f64 {
        let total: u64 = self.per_type.iter().map(|q| q.rendered_total).sum();
        let manufactured: u64 = self.per_type.iter().map(|q| q.manufactured()).sum();
        if total == 0 {
            return 0.0;
        }
        manufactured as f64 / total as f64
    }
}

impl fmt::Display for QuantifiedLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "quantified loss: drops {:.1}% of instances, manufactures {:.1}% of the output",
            self.dropped_fraction() * 100.0,
            self.manufactured_fraction() * 100.0
        )?;
        for q in &self.per_type {
            writeln!(
                f,
                "  {:40} source {:6}  unique {:6}  total {:6}  dropped {:5.1}%  dup ×{:.2}",
                q.type_name,
                q.source_instances,
                q.rendered_unique,
                q.rendered_total,
                q.dropped_fraction() * 100.0,
                q.duplication_factor()
            )?;
        }
        Ok(())
    }
}

/// Measure the actual information loss of rendering `target` against
/// `doc`.
pub fn quantify(doc: &ShreddedDoc, target: &Shape) -> MorphResult<QuantifiedLoss> {
    let out = render(
        doc,
        target,
        &RenderOptions {
            wrapper: Some("q".into()),
            tag_source: true,
            pipelined: true,
        },
    )?;
    let parsed = Document::parse_str(&out)?;

    // Tally rendered appearances per source type.
    let mut unique: BTreeMap<u32, BTreeSet<Dewey>> = BTreeMap::new();
    let mut total: BTreeMap<u32, u64> = BTreeMap::new();
    if let Some(root) = parsed.root_element() {
        for node in parsed.descendant_elements(root) {
            let Some(tag) = parsed.attr(node, "data-src") else {
                continue;
            };
            let dewey: Dewey = tag
                .parse()
                .map_err(|_| MorphError::Internal("bad data-src"))?;
            let Some(type_id) = doc.node_type(&dewey)? else {
                continue;
            };
            unique.entry(type_id.0).or_default().insert(dewey);
            *total.entry(type_id.0).or_insert(0) += 1;
        }
    }

    // Retained types: bases of the target shape (clones share a base and
    // fold into that base's tally).
    let mut retained: BTreeSet<u32> = BTreeSet::new();
    for n in target.preorder() {
        if let Some(base) = target.nodes[n].base {
            retained.insert(base.0);
        }
    }

    let types = doc.types();
    let mut per_type: Vec<TypeQuantity> = retained
        .into_iter()
        .map(|raw| {
            let t = crate::model::types::TypeId(raw);
            TypeQuantity {
                type_name: types.dotted(t),
                source_instances: doc.instance_count(t),
                rendered_unique: unique.get(&raw).map(|s| s.len() as u64).unwrap_or(0),
                rendered_total: total.get(&raw).copied().unwrap_or(0),
            }
        })
        .collect();
    per_type.sort_by(|a, b| a.type_name.cmp(&b.type_name));
    Ok(QuantifiedLoss { per_type })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Guard, GuardAnalysis};
    use xmorph_pagestore::Store;

    fn analyze(guard: &str, xml: &str) -> (Store, ShreddedDoc, GuardAnalysis) {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        let analysis = Guard::parse(guard).unwrap().analyze(&doc).unwrap();
        (store, doc, analysis)
    }

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    #[test]
    fn lossless_guard_measures_zero() {
        let (_s, doc, analysis) = analyze("MORPH author [ name book [ title ] ]", FIG1A);
        let q = quantify(&doc, &analysis.target).unwrap();
        assert_eq!(q.dropped_fraction(), 0.0, "{q}");
        assert_eq!(q.manufactured_fraction(), 0.0, "{q}");
        let books = q
            .per_type
            .iter()
            .find(|t| t.type_name == "data.book")
            .unwrap();
        assert_eq!(books.source_instances, 2);
        assert_eq!(books.rendered_unique, 2);
    }

    #[test]
    fn duplicating_guard_measures_manufacture() {
        // 'name' is ambiguous: author names and publisher names tie for
        // titles, so each title renders under both — ×2 duplication.
        let (_s, doc, analysis) = analyze("CAST MORPH name [ title ]", FIG1A);
        let q = quantify(&doc, &analysis.target).unwrap();
        let titles = q
            .per_type
            .iter()
            .find(|t| t.type_name == "data.book.title")
            .unwrap();
        assert_eq!(titles.rendered_unique, 2);
        assert_eq!(titles.rendered_total, 4);
        assert_eq!(titles.duplication_factor(), 2.0);
        assert!(q.manufactured_fraction() > 0.2, "{q}");
    }

    #[test]
    fn restricting_guard_measures_drops() {
        let xml = "<d>\
            <book><award>w</award><title>A</title></book>\
            <book><title>B</title></book>\
            <book><title>C</title></book>\
            </d>";
        let (_s, doc, analysis) = analyze("CAST MORPH (RESTRICT book [ award ]) [ title ]", xml);
        let q = quantify(&doc, &analysis.target).unwrap();
        let books = q.per_type.iter().find(|t| t.type_name == "d.book").unwrap();
        assert_eq!(books.source_instances, 3);
        assert_eq!(books.rendered_unique, 1);
        assert_eq!(books.dropped(), 2);
        assert!((books.dropped_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        let (_s, doc, analysis) = analyze("MORPH title", FIG1A);
        let q = quantify(&doc, &analysis.target).unwrap();
        let s = q.to_string();
        assert!(s.contains("drops 0.0%"), "{s}");
        assert!(s.contains("data.book.title"), "{s}");
    }
}

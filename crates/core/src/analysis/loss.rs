//! Theorems 1 and 2 (§V-B), applied to the predicted target shape.
//!
//! The ξ evaluation already adorned every target edge with its predicted
//! cardinality (Def. 7), so the target shape *is* the predicted adorned
//! shape `R_p`. The analysis compares, for every ordered pair of source
//! types that appears in the target, the path cardinality in the source
//! against the path cardinality in `R_p`:
//!
//! * **Theorem 1 (inclusive / no data lost):** no minimum may rise from
//!   zero to non-zero — otherwise instances lacking a closest partner are
//!   dropped by the transform.
//! * **Theorem 2 (non-additive / no data created):** no maximum may
//!   increase — otherwise instances are duplicated, manufacturing closest
//!   relationships absent from the source.
//!
//! `CLONE` and `NEW` types are additive by construction; a `RESTRICT`
//! whose filter is not guaranteed to match is non-inclusive. Types the
//! guard simply does not mention are reported informationally
//! (subsetting) without affecting the class, matching the paper's
//! type-complete framing.

use crate::report::{LossFinding, LossReport};
use crate::semantics::shape::{SId, Shape};
use std::collections::BTreeSet;

/// Run the loss analysis: `src` is the data-backed source shape, `tgt`
/// the evaluated target shape (with predicted cardinalities), and
/// `instance_count(t)` the number of instances of source-shape node `t`.
pub fn analyze_loss(src: &Shape, tgt: &Shape, instance_count: impl Fn(SId) -> u64) -> LossReport {
    let mut findings: Vec<LossFinding> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut inclusive = true;
    let mut non_additive = true;

    let push = |findings: &mut Vec<LossFinding>, seen: &mut BTreeSet<String>, f: LossFinding| {
        let key = format!("{f:?}");
        if seen.insert(key) {
            findings.push(f);
        }
    };

    // Renderable target nodes (filters excluded) in preorder.
    let nodes = tgt.preorder();

    // CLONE / NEW are additive by construction.
    for &n in &nodes {
        if tgt.nodes[n].is_clone {
            non_additive = false;
            let name = tgt.nodes[n]
                .origin
                .map(|o| src.dotted(o))
                .unwrap_or_else(|| tgt.nodes[n].name.clone());
            push(
                &mut findings,
                &mut seen,
                LossFinding::CloneAdds { type_name: name },
            );
        }
        if tgt.nodes[n].is_new {
            non_additive = false;
            push(
                &mut findings,
                &mut seen,
                LossFinding::NewAdds {
                    name: tgt.nodes[n].name.clone(),
                },
            );
        }
    }

    // RESTRICT filters that are not guaranteed to match lose instances.
    for &n in &nodes {
        for &f in &tgt.nodes[n].filters {
            if let (Some(no), Some(fo)) = (tgt.nodes[n].origin, tgt.nodes[f].origin) {
                let guaranteed = src.path_card(no, fo).map(|c| c.min >= 1).unwrap_or(false);
                if !guaranteed {
                    inclusive = false;
                    push(
                        &mut findings,
                        &mut seen,
                        LossFinding::RestrictFilters {
                            type_name: src.dotted(no),
                            filter: src.dotted(fo),
                        },
                    );
                }
            }
        }
    }

    // Pairwise path-cardinality comparison (Theorems 1 and 2). Nodes in
    // different target trees relate through the virtual forest root (the
    // rendered document wrapper), with the root edges carrying absolute
    // cardinalities — so flattening two types side by side is checked
    // like any other rearrangement.
    for &x in &nodes {
        let Some(ox) = tgt.nodes[x].origin else {
            continue;
        };
        for &y in &nodes {
            if x == y {
                continue;
            }
            let Some(oy) = tgt.nodes[y].origin else {
                continue;
            };
            let Some(tgt_card) = tgt.path_card(x, y) else {
                continue;
            };
            let src_card = src.path_card(ox, oy);
            match src_card {
                Some(sc) => {
                    if sc.min == 0 && tgt_card.min > 0 {
                        inclusive = false;
                        push(
                            &mut findings,
                            &mut seen,
                            LossFinding::MinCardRaised {
                                from: src.dotted(ox),
                                to: src.dotted(oy),
                                src: sc,
                                tgt: tgt_card,
                            },
                        );
                    }
                    if tgt_card.max > sc.max {
                        non_additive = false;
                        push(
                            &mut findings,
                            &mut seen,
                            LossFinding::MaxCardRaised {
                                from: src.dotted(ox),
                                to: src.dotted(oy),
                                src: sc,
                                tgt: tgt_card,
                            },
                        );
                    }
                }
                None => {
                    // Unrelated in the source: relating them at all both
                    // requires partners (may drop) and manufactures
                    // relationships (may add).
                    if tgt_card.min > 0 {
                        inclusive = false;
                    }
                    non_additive = false;
                    push(
                        &mut findings,
                        &mut seen,
                        LossFinding::MaxCardRaised {
                            from: src.dotted(ox),
                            to: src.dotted(oy),
                            src: crate::model::card::Card::zero(),
                            tgt: tgt_card,
                        },
                    );
                }
            }
        }
    }

    let mut report = LossReport::classify(inclusive, non_additive, findings);

    // Subsetting: source types absent from the target (informational).
    let present: BTreeSet<SId> = nodes.iter().filter_map(|&n| tgt.nodes[n].origin).collect();
    for s in 0..src.nodes.len() {
        if !present.contains(&s) && instance_count(s) > 0 {
            report
                .dropped_types
                .push((src.dotted(s), instance_count(s)));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower;
    use crate::lang::parse;
    use crate::model::card::{Card, CardMax};
    use crate::model::shape::AdornedShape;
    use crate::report::GuardTyping;
    use crate::semantics::eval::{eval_guard, EvalCtx, GuideOracle};
    use xmorph_xml::dom::Document;

    fn classify(guard: &str, xml: &str) -> LossReport {
        classify_with(guard, xml, |_| {})
    }

    fn classify_with(guard: &str, xml: &str, tweak: impl FnOnce(&mut AdornedShape)) -> LossReport {
        let doc = Document::parse_str(xml).unwrap();
        let mut adorned = AdornedShape::from_document(&doc);
        tweak(&mut adorned);
        let src = Shape::from_adorned(&adorned);
        let oracle = GuideOracle(adorned.types());
        let mut ctx = EvalCtx::new(&oracle);
        let op = lower(&parse(guard).unwrap());
        let tgt = eval_guard(&op, &src, &mut ctx).unwrap();
        analyze_loss(&src, &tgt, |s| {
            adorned.instance_count(crate::model::types::TypeId(s as u32))
        })
    }

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    const FIG1C: &str = "<data>\
        <author><name>Tim</name>\
          <book><title>X</title><publisher><name>W</name></publisher></book>\
          <book><title>Y</title><publisher><name>V</name></publisher></book>\
        </author></data>";

    #[test]
    fn paper_intro_guard_is_strong() {
        // "The guard given above turns out to be strongly-typed" (§I).
        for xml in [FIG1A, FIG1C] {
            let report = classify("MORPH author [ name book [ title ] ]", xml);
            assert_eq!(report.typing, GuardTyping::Strong, "{xml}: {report}");
            assert!(report.reversible());
        }
    }

    #[test]
    fn paper_widening_guard_on_fig1c() {
        // "The transformation for instance (c) is widening" (§I): titles
        // get duplicated next to each publisher.
        let report = classify("MORPH author [ !title name publisher [ name ] ]", FIG1C);
        assert_eq!(report.typing, GuardTyping::Widening, "{report}");
        assert!(report.inclusive);
        assert!(!report.non_additive);
    }

    #[test]
    fn optional_name_swap_is_narrowing() {
        // §V-B: with author's name optional (0..1), MUTATE name [author]
        // is non-inclusive (authors without names are dropped) but
        // non-additive.
        let report = classify_with("MUTATE author.name [ author ]", FIG1C, |shape| {
            let name_ty = shape
                .types()
                .lookup(&["data".into(), "author".into(), "name".into()])
                .unwrap();
            shape.set_card(name_ty, Card::new(0, CardMax::Finite(1)));
        });
        assert!(!report.inclusive, "{report}");
        assert!(report.non_additive, "{report}");
        assert_eq!(report.typing, GuardTyping::Narrowing);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, LossFinding::MinCardRaised { .. })));
    }

    #[test]
    fn swap_without_optionality_is_strong() {
        // With 1..1 names the same swap loses nothing (§V-B: "since name
        // to author is 1..1, swapping their position does not change the
        // predicted maximum path cardinality").
        let report = classify("MUTATE author.name [ author ]", FIG1C);
        assert_eq!(report.typing, GuardTyping::Strong, "{report}");
    }

    #[test]
    fn clone_is_additive() {
        let report = classify("MUTATE author [ CLONE title ]", FIG1C);
        assert!(!report.non_additive);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, LossFinding::CloneAdds { .. })));
    }

    #[test]
    fn new_is_additive() {
        let report = classify("MUTATE (NEW scribe) [ author ]", FIG1C);
        assert!(!report.non_additive);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, LossFinding::NewAdds { .. })));
    }

    #[test]
    fn subsetting_reported_but_not_lossy_class() {
        let report = classify("MORPH author [ name ]", FIG1A);
        assert_eq!(report.typing, GuardTyping::Strong, "{report}");
        assert!(!report.dropped_types.is_empty());
        let dropped: Vec<&str> = report
            .dropped_types
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(dropped.contains(&"data.book.title"), "{dropped:?}");
    }

    #[test]
    fn restrict_with_guaranteed_filter_is_safe() {
        // Every author.name has an author at distance 1 with card 1..1 up:
        // path card from name to author is 1..1, so nothing is dropped.
        let report = classify(
            "MORPH (RESTRICT author.name [ author ]) [ book.title ]",
            FIG1C,
        );
        assert!(report.inclusive, "{report}");
    }

    #[test]
    fn restrict_with_optional_filter_flags() {
        // Not every book has an award, so RESTRICT book [award] may drop.
        let xml =
            "<d><book><award>X</award><title>A</title></book><book><title>B</title></book></d>";
        let report = classify("MORPH (RESTRICT book [ award ]) [ title ]", xml);
        assert!(!report.inclusive, "{report}");
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, LossFinding::RestrictFilters { .. })));
    }

    #[test]
    fn duplicating_morph_is_additive() {
        // In FIG1A each book has one publisher, so title[publisher.name]
        // preserves every pairwise cardinality — strong.
        let strong = classify("MORPH title [ publisher.name ]", FIG1A);
        assert_eq!(strong.typing, GuardTyping::Strong, "{strong}");
        // But flattening titles and publishers under the author in FIG1C
        // raises the title↔publisher path cardinality from 1..1 (via the
        // book) to 2..2 (via the author): relationships are manufactured.
        let report = classify("MORPH author [ title publisher ]", FIG1C);
        assert!(!report.non_additive, "{report}");
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, LossFinding::MaxCardRaised { .. })),
            "{report}"
        );
    }

    #[test]
    fn findings_deduplicate() {
        let report = classify("MORPH author [ !title name publisher [ name ] ]", FIG1C);
        let mut keys: Vec<String> = report.findings.iter().map(|f| format!("{f:?}")).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }
}

//! The high-level query-guard API.
//!
//! A [`Guard`] is parsed once and reused across documents and queries —
//! "the same guard will be reused for many queries" (§I). Evaluating it
//! against a document runs the full pipeline of the paper's Fig. 8:
//! parse → algebra → type analysis (label report) → information-loss
//! check → shape generation → render.

use crate::algebra::{lower, optimize, Op};
use crate::analysis::analyze_loss;
use crate::error::{MorphError, MorphResult};
use crate::lang::ast::{Ast, CastMode};
use crate::lang::parse;
use crate::render::{render, RenderOptions};
use crate::report::{GuardTyping, LabelReport, LossReport};
use crate::semantics::eval::{eval_guard, EvalCtx};
use crate::semantics::shape::Shape;
use crate::store::shredded::ShreddedDoc;
use xmorph_pagestore::Store;

/// A parsed, reusable query guard.
#[derive(Debug, Clone)]
pub struct Guard {
    source: String,
    ast: Ast,
    op: Op,
}

/// Everything the guard's *compile* phase produces — the paper stresses
/// this phase is cheap relative to rendering (§IX, Fig. 10).
#[derive(Debug, Clone)]
pub struct GuardAnalysis {
    /// The generated target shape (with predicted cardinalities).
    pub target: Shape,
    /// The label-to-type report.
    pub labels: LabelReport,
    /// The information-loss report, with the typing class.
    pub loss: LossReport,
    /// Which typing classes the guard's CAST wrappers admit.
    pub allowed: AllowedTypings,
}

impl GuardAnalysis {
    /// Would enforcement let this guard transform the data?
    pub fn permitted(&self) -> bool {
        self.allowed.permits(self.loss.typing)
    }

    /// Enforce the typing discipline: error unless permitted.
    pub(crate) fn enforce(&self) -> MorphResult<()> {
        if self.permitted() {
            Ok(())
        } else {
            Err(MorphError::Rejected {
                typing: self.loss.typing,
                allowed: self.allowed.describe(),
            })
        }
    }
}

/// The set of typing classes admitted by the guard's cast wrappers.
/// Strongly-typed guards are always admitted (§III: "By default only
/// strongly-typed guards are allowed").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllowedTypings {
    /// `CAST-NARROWING` present.
    pub narrowing: bool,
    /// `CAST-WIDENING` present.
    pub widening: bool,
    /// `CAST` present (weakly-typed allowed).
    pub weak: bool,
}

impl AllowedTypings {
    /// Does this admit the given class?
    pub fn permits(&self, typing: GuardTyping) -> bool {
        match typing {
            GuardTyping::Strong => true,
            GuardTyping::Narrowing => self.narrowing || self.weak,
            GuardTyping::Widening => self.widening || self.weak,
            GuardTyping::Weak => self.weak,
        }
    }

    fn describe(&self) -> &'static str {
        match (self.weak, self.narrowing, self.widening) {
            (true, _, _) => "any",
            (false, true, true) => "strongly-typed, narrowing, or widening",
            (false, true, false) => "strongly-typed or narrowing",
            (false, false, true) => "strongly-typed or widening",
            (false, false, false) => "strongly-typed",
        }
    }
}

/// The result of applying a guard: the transformed XML plus the analysis.
#[derive(Debug, Clone)]
pub struct GuardOutput {
    /// The rendered, transformed document.
    pub xml: String,
    /// The compile-phase analysis.
    pub analysis: GuardAnalysis,
}

fn collect_casts(op: &Op, allowed: &mut AllowedTypings) {
    match op {
        Op::Cast(CastMode::Weak, inner) => {
            allowed.weak = true;
            collect_casts(inner, allowed);
        }
        Op::Cast(CastMode::Narrowing, inner) => {
            allowed.narrowing = true;
            collect_casts(inner, allowed);
        }
        Op::Cast(CastMode::Widening, inner) => {
            allowed.widening = true;
            collect_casts(inner, allowed);
        }
        Op::TypeFill(inner) => collect_casts(inner, allowed),
        Op::Compose(a, b) => {
            collect_casts(a, allowed);
            collect_casts(b, allowed);
        }
        _ => {}
    }
}

impl Guard {
    /// Parse a guard program.
    pub fn parse(text: &str) -> MorphResult<Guard> {
        let ast = parse(text)?;
        let op = optimize(lower(&ast));
        Ok(Guard {
            source: text.to_string(),
            ast,
            op,
        })
    }

    /// The original program text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// The lowered algebra.
    pub fn algebra(&self) -> &Op {
        &self.op
    }

    /// Which typing classes the guard's casts admit.
    pub fn allowed(&self) -> AllowedTypings {
        let mut allowed = AllowedTypings::default();
        collect_casts(&self.op, &mut allowed);
        allowed
    }

    /// Run the compile phase against a shredded document: evaluate ξ,
    /// produce both reports, but do not render. This is the cheap "is
    /// the data already in shape / can it be transformed safely?" check
    /// a query evaluator runs before each query.
    pub fn analyze(&self, doc: &ShreddedDoc) -> MorphResult<GuardAnalysis> {
        let src = Shape::from_adorned(doc.shape());
        let mut ctx = EvalCtx::new(doc);
        let target = eval_guard(&self.op, &src, &mut ctx)?;
        let loss = analyze_loss(&src, &target, |s| {
            doc.shape()
                .instance_count(crate::model::types::TypeId(s as u32))
        });
        Ok(GuardAnalysis {
            target,
            labels: ctx.labels,
            loss,
            allowed: self.allowed(),
        })
    }

    /// [`Guard::analyze`] against a pinned [`Snapshot`]: the same
    /// compile phase, but evaluated on the snapshot's frozen shape and
    /// columns so analysis and the render that follows read one epoch.
    ///
    /// [`Snapshot`]: crate::store::shredded::Snapshot
    pub fn analyze_snapshot(
        &self,
        snap: &crate::store::shredded::Snapshot,
    ) -> MorphResult<GuardAnalysis> {
        let src = Shape::from_adorned(snap.shape());
        let mut ctx = EvalCtx::new(snap);
        let target = eval_guard(&self.op, &src, &mut ctx)?;
        let loss = analyze_loss(&src, &target, |s| {
            snap.shape()
                .instance_count(crate::model::types::TypeId(s as u32))
        });
        Ok(GuardAnalysis {
            target,
            labels: ctx.labels,
            loss,
            allowed: self.allowed(),
        })
    }

    /// Analyze, enforce the typing discipline, and render.
    pub fn apply(&self, doc: &ShreddedDoc) -> MorphResult<GuardOutput> {
        self.apply_with(doc, &RenderOptions::default())
    }

    /// [`Guard::apply`] with explicit render options.
    pub fn apply_with(&self, doc: &ShreddedDoc, opts: &RenderOptions) -> MorphResult<GuardOutput> {
        let analysis = self.analyze(doc)?;
        analysis.enforce()?;
        let xml = render(doc, &analysis.target, opts)?;
        Ok(GuardOutput { xml, analysis })
    }

    /// Convenience: shred `xml` into an ephemeral in-memory store and
    /// apply the guard.
    pub fn apply_to_str(&self, xml: &str) -> MorphResult<GuardOutput> {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml)?;
        self.apply(&doc)
    }

    /// Convenience: analyze against `xml` without rendering.
    pub fn analyze_str(&self, xml: &str) -> MorphResult<GuardAnalysis> {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml)?;
        self.analyze(&doc)
    }

    /// Measure the *actual* information loss of this guard on a concrete
    /// document (the paper's §X refinement of the four coarse loss
    /// kinds): per retained type, how many instances drop and how many
    /// duplicates are manufactured. Costs a full transformation.
    pub fn quantify(&self, doc: &ShreddedDoc) -> MorphResult<crate::analysis::QuantifiedLoss> {
        let analysis = self.analyze(doc)?;
        crate::analysis::quantify(doc, &analysis.target)
    }

    /// Does the data already have the requested shape? True when the
    /// guard's target shape is (a renaming-free copy of) a fragment of
    /// the source shape with identical parent/child edges — in that case
    /// a query could run on the source directly.
    pub fn data_already_in_shape(&self, doc: &ShreddedDoc) -> MorphResult<bool> {
        let analysis = self.analyze(doc)?;
        let src = Shape::from_adorned(doc.shape());
        Ok(shape_is_fragment(&analysis.target, &src))
    }
}

/// Is `target` structurally a fragment of `src` (every target edge is a
/// source edge between the same origins, names unchanged)?
fn shape_is_fragment(target: &Shape, src: &Shape) -> bool {
    target.preorder().into_iter().all(|n| {
        let node = &target.nodes[n];
        let Some(origin) = node.origin else {
            return false;
        };
        if node.name != src.nodes[origin].name || !node.filters.is_empty() {
            return false;
        }
        match node.parent {
            None => true,
            Some(p) => match target.nodes[p].origin {
                Some(po) => src.nodes[origin].parent == Some(po),
                None => false,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    const FIG1C: &str = "<data><author><name>Tim</name>\
        <book><title>X</title><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><publisher><name>V</name></publisher></book>\
        </author></data>";

    #[test]
    fn end_to_end_quickstart() {
        let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        let out = guard.apply_to_str(FIG1A).unwrap();
        assert!(out.xml.contains("<name>Tim</name>"));
        assert_eq!(out.analysis.loss.typing, GuardTyping::Strong);
    }

    #[test]
    fn default_enforcement_rejects_widening() {
        let guard = Guard::parse("MORPH author [ !title name publisher [ name ] ]").unwrap();
        let err = guard.apply_to_str(FIG1C).unwrap_err();
        match err {
            MorphError::Rejected { typing, .. } => assert_eq!(typing, GuardTyping::Widening),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_widening_admits_it() {
        let guard =
            Guard::parse("CAST-WIDENING MORPH author [ !title name publisher [ name ] ]").unwrap();
        let out = guard.apply_to_str(FIG1C).unwrap();
        assert_eq!(out.analysis.loss.typing, GuardTyping::Widening);
    }

    #[test]
    fn cast_weak_admits_everything() {
        let allowed = Guard::parse("CAST MORPH a").unwrap().allowed();
        assert!(allowed.permits(GuardTyping::Weak));
        assert!(allowed.permits(GuardTyping::Widening));
        assert!(allowed.permits(GuardTyping::Narrowing));
        assert!(allowed.permits(GuardTyping::Strong));
    }

    #[test]
    fn analysis_without_render() {
        let guard = Guard::parse("MORPH author [ name ]").unwrap();
        let analysis = guard.analyze_str(FIG1A).unwrap();
        assert_eq!(analysis.labels.resolutions.len(), 2);
        assert!(analysis.permitted());
    }

    #[test]
    fn mismatch_surfaces_as_error() {
        let guard = Guard::parse("MORPH nonexistent").unwrap();
        let err = guard.apply_to_str(FIG1A).unwrap_err();
        assert!(matches!(err, MorphError::TypeMismatch { .. }));
    }

    #[test]
    fn type_fill_rescues_mismatch() {
        let guard = Guard::parse("CAST TYPE-FILL MUTATE nonexistent [ author ]").unwrap();
        let out = guard.apply_to_str(FIG1A).unwrap();
        assert!(out.xml.contains("<nonexistent>"), "{}", out.xml);
    }

    #[test]
    fn data_already_in_shape_detection() {
        let guard = Guard::parse("MORPH book [ title ]").unwrap();
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        assert!(guard.data_already_in_shape(&doc).unwrap());
        // The author-rooted shape is NOT how FIG1A is arranged.
        let guard2 = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        assert!(!guard2.data_already_in_shape(&doc).unwrap());
    }

    #[test]
    fn guard_reuse_across_instances() {
        // One guard, three differently-shaped sources, one result shape —
        // the paper's core pitch.
        let fig1b = "<data>\
            <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
            <publisher><name>V</name><book><title>Y</title><author><name>Tim</name></author></book></publisher>\
            </data>";
        let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        let a = guard.apply_to_str(FIG1A).unwrap().xml;
        let b = guard.apply_to_str(fig1b).unwrap().xml;
        let c = guard.apply_to_str(FIG1C).unwrap().xml;
        assert_eq!(a, b);
        // (c) groups the two books under one author element (the
        // grouping is in the source data) — same data, different
        // grouping, exactly as Fig. 2 describes.
        assert_eq!(c.matches("<author>").count(), 1);
        assert_eq!(c.matches("<title>").count(), 2);
        assert_eq!(a.matches("<author>").count(), 2);
    }

    #[test]
    fn rejected_error_is_explanatory() {
        let guard = Guard::parse("MORPH author [ !title name publisher [ name ] ]").unwrap();
        let err = guard.apply_to_str(FIG1C).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("widening"), "{msg}");
        assert!(msg.contains("CAST"), "{msg}");
    }
}

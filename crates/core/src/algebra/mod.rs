//! The XMorph operator algebra (§VIII).
//!
//! Parsed guards are lowered to this algebra by an attribute-grammar-style
//! walk ([`lower()`](lower::lower)); the semantic function ξ ([`crate::semantics`])
//! interprets algebra trees. Operators mirror the paper's list: `compose`,
//! `morph`, `mutate`, `translate`, `type`, `drop`, `closest`, `clone`,
//! `new`, `restrict` (plus `children`/`descendants` for the `*`/`**`
//! markers and the cast wrappers, which the paper treats as part of the
//! type system).

pub mod lower;
pub mod optimize;
pub mod typecheck;

pub use lower::lower;
pub use optimize::optimize;

use crate::lang::ast::CastMode;
use std::fmt;

/// A guard-level operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `compose(Q, R)` — evaluate `Q`, pipe its shape into `R`.
    Compose(Box<Op>, Box<Op>),
    /// `morph(P)` — the output shape is exactly the pattern's meaning.
    Morph(POp),
    /// `mutate(P)` — rearrange the whole input shape per the pattern.
    Mutate(POp),
    /// `translate(D)` — rename types via the dictionary.
    Translate(Vec<(String, String)>),
    /// Cast wrapper: loosens typing enforcement for the inner guard.
    Cast(CastMode, Box<Op>),
    /// TYPE-FILL wrapper: unmatched labels become NEW types.
    TypeFill(Box<Op>),
}

/// A pattern-level operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum POp {
    /// `type(label)` — select the type(s) named by the label.
    Type(String),
    /// `closest(parent, children)` — build edges from the parent's roots
    /// to each child fragment's closest roots (the `extend` of §VI).
    Closest {
        /// The parent fragment.
        parent: Box<POp>,
        /// Child fragments, in source order.
        children: Vec<POp>,
    },
    /// Sibling fragments (juxtaposition in a pattern).
    Siblings(Vec<POp>),
    /// `children(P)` — `P` plus its source children (`[*]`).
    Children(Box<POp>),
    /// `descendants(P)` — `P` plus its entire source subtree (`[**]`).
    Descendants(Box<POp>),
    /// `drop(P)` — remove the matched types (inside `MUTATE`).
    Drop(Box<POp>),
    /// `restrict(P)` — keep the roots, demote the rest to a filter.
    Restrict(Box<POp>),
    /// `new(label)` — construct a brand-new type.
    New(String),
    /// `clone(P)` — duplicate the matched types as distinct types.
    Clone(Box<POp>),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compose(a, b) => write!(f, "compose({a}, {b})"),
            Op::Morph(p) => write!(f, "morph({p})"),
            Op::Mutate(p) => write!(f, "mutate({p})"),
            Op::Translate(d) => {
                write!(f, "translate(")?;
                for (i, (a, b)) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}→{b}")?;
                }
                write!(f, ")")
            }
            Op::Cast(mode, g) => write!(f, "cast[{mode:?}]({g})"),
            Op::TypeFill(g) => write!(f, "typefill({g})"),
        }
    }
}

impl fmt::Display for POp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            POp::Type(l) => write!(f, "type({l})"),
            POp::Closest { parent, children } => {
                write!(f, "closest({parent}; ")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            POp::Siblings(items) => {
                write!(f, "[")?;
                for (i, c) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
            POp::Children(p) => write!(f, "children({p})"),
            POp::Descendants(p) => write!(f, "descendants({p})"),
            POp::Drop(p) => write!(f, "drop({p})"),
            POp::Restrict(p) => write!(f, "restrict({p})"),
            POp::New(l) => write!(f, "new({l})"),
            POp::Clone(p) => write!(f, "clone({p})"),
        }
    }
}

//! Lowering from the AST to the operator algebra.
//!
//! The paper translates programs to the algebra with an attribute grammar
//! while parsing (§VIII); we keep the stages separate so the AST remains
//! inspectable.

use crate::algebra::{Op, POp};
use crate::lang::ast::{Ast, Head, Item, Pattern};

/// Lower a parsed guard to the algebra.
pub fn lower(ast: &Ast) -> Op {
    match ast {
        Ast::Morph(p) => Op::Morph(lower_pattern(p)),
        Ast::Mutate(p) => Op::Mutate(lower_pattern(p)),
        Ast::Translate(d) => Op::Translate(d.clone()),
        Ast::Compose(a, b) => Op::Compose(Box::new(lower(a)), Box::new(lower(b))),
        Ast::Cast(mode, g) => Op::Cast(*mode, Box::new(lower(g))),
        Ast::TypeFill(g) => Op::TypeFill(Box::new(lower(g))),
    }
}

fn lower_pattern(p: &Pattern) -> POp {
    if p.items.len() == 1 {
        lower_item(&p.items[0])
    } else {
        POp::Siblings(p.items.iter().map(lower_item).collect())
    }
}

fn lower_item(item: &Item) -> POp {
    let mut head = match &item.head {
        Head::Label(l) => POp::Type(l.clone()),
        Head::Drop(p) => POp::Drop(Box::new(lower_pattern(p))),
        Head::Restrict(p) => POp::Restrict(Box::new(lower_pattern(p))),
        Head::New(l) => POp::New(l.clone()),
        Head::Clone(p) => POp::Clone(Box::new(lower_pattern(p))),
    };
    // `[*]` / `[**]` wrap the head before children attach, so the copied
    // children land on the same node the pattern children do.
    if item.include_children {
        head = POp::Children(Box::new(head));
    }
    if item.include_descendants {
        head = POp::Descendants(Box::new(head));
    }
    if item.children.is_empty() {
        head
    } else {
        POp::Closest {
            parent: Box::new(head),
            children: item.children.items.iter().map(lower_item).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;

    fn lowered(src: &str) -> Op {
        lower(&parse(src).unwrap())
    }

    #[test]
    fn paper_fig9_algebra_shape() {
        // MORPH author [name publisher [name book [title price]]]
        // lowers to nested closest operators (paper Fig. 9).
        let op = lowered("MORPH author [name publisher [name book [title price]]]");
        let printed = op.to_string();
        assert_eq!(
            printed,
            "morph(closest(type(author); type(name), \
             closest(type(publisher); type(name), \
             closest(type(book); type(title), type(price)))))"
        );
    }

    #[test]
    fn compose_lowers_to_compose() {
        let op = lowered("MORPH a | MUTATE b");
        assert!(matches!(op, Op::Compose(_, _)));
    }

    #[test]
    fn star_markers_wrap_head() {
        let op = lowered("MORPH author [*]");
        assert_eq!(op.to_string(), "morph(children(type(author)))");
        let op = lowered("MORPH book [** title]");
        assert_eq!(
            op.to_string(),
            "morph(closest(descendants(type(book)); type(title)))"
        );
    }

    #[test]
    fn constructs_lower() {
        assert_eq!(
            lowered("MUTATE (NEW scribe) [ author ]").to_string(),
            "mutate(closest(new(scribe); type(author)))"
        );
        assert_eq!(
            lowered("MUTATE author [ CLONE title ]").to_string(),
            "mutate(closest(type(author); clone(type(title))))"
        );
        assert_eq!(
            lowered("MUTATE (DROP name)").to_string(),
            "mutate(drop(type(name)))"
        );
        assert_eq!(
            lowered("MORPH (RESTRICT name [ author ]) [ title ]").to_string(),
            "morph(closest(restrict(closest(type(name); type(author))); type(title)))"
        );
    }

    #[test]
    fn siblings_at_top_level() {
        let op = lowered("MORPH a b c");
        assert_eq!(op.to_string(), "morph([type(a) type(b) type(c)])");
    }
}

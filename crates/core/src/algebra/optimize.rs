//! Algebra simplification.
//!
//! The paper's §VIII runs a two-stage type analysis over the algebra tree
//! "potentially reducing the cost of query evaluation"; in this
//! implementation the type resolution itself happens during ξ (where the
//! closest distances live), and this pass performs the purely structural
//! simplifications that make the tree smaller before evaluation:
//!
//! * nested `Siblings` flatten into one list (and singletons unwrap);
//! * stacked identical casts collapse (`CAST CAST g` → `CAST g`), and a
//!   weak `CAST` absorbs the narrower casts beneath it;
//! * nested `TYPE-FILL` collapses.

use crate::algebra::{Op, POp};
use crate::lang::ast::CastMode;

/// Simplify an algebra tree. Semantics-preserving.
pub fn optimize(op: Op) -> Op {
    match op {
        Op::Compose(a, b) => Op::Compose(Box::new(optimize(*a)), Box::new(optimize(*b))),
        Op::Morph(p) => Op::Morph(optimize_pop(p)),
        Op::Mutate(p) => Op::Mutate(optimize_pop(p)),
        Op::Translate(d) => Op::Translate(d),
        Op::Cast(mode, inner) => {
            let inner = optimize(*inner);
            match inner {
                // CAST absorbs everything; identical casts collapse.
                Op::Cast(inner_mode, g) if mode == CastMode::Weak || inner_mode == mode => {
                    Op::Cast(mode.max_with(inner_mode), g)
                }
                other => Op::Cast(mode, Box::new(other)),
            }
        }
        Op::TypeFill(inner) => {
            let inner = optimize(*inner);
            match inner {
                Op::TypeFill(g) => Op::TypeFill(g),
                other => Op::TypeFill(Box::new(other)),
            }
        }
    }
}

impl CastMode {
    /// The weaker (more permissive) of two cast modes, for collapsing
    /// stacked casts. `Weak` admits everything.
    fn max_with(self, other: CastMode) -> CastMode {
        if self == CastMode::Weak || other == CastMode::Weak {
            CastMode::Weak
        } else {
            // Identical by construction of the caller.
            self
        }
    }
}

fn optimize_pop(p: POp) -> POp {
    match p {
        POp::Siblings(items) => {
            let mut flat = Vec::new();
            for item in items {
                match optimize_pop(item) {
                    POp::Siblings(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.pop().expect("one element")
            } else {
                POp::Siblings(flat)
            }
        }
        POp::Closest { parent, children } => POp::Closest {
            parent: Box::new(optimize_pop(*parent)),
            children: children
                .into_iter()
                .flat_map(|c| match optimize_pop(c) {
                    POp::Siblings(inner) => inner,
                    other => vec![other],
                })
                .collect(),
        },
        POp::Children(p) => POp::Children(Box::new(optimize_pop(*p))),
        POp::Descendants(p) => POp::Descendants(Box::new(optimize_pop(*p))),
        POp::Drop(p) => POp::Drop(Box::new(optimize_pop(*p))),
        POp::Restrict(p) => POp::Restrict(Box::new(optimize_pop(*p))),
        POp::Clone(p) => POp::Clone(Box::new(optimize_pop(*p))),
        leaf @ (POp::Type(_) | POp::New(_)) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower;
    use crate::lang::parse;

    fn opt(src: &str) -> String {
        optimize(lower(&parse(src).unwrap())).to_string()
    }

    #[test]
    fn nested_siblings_flatten() {
        let p = POp::Siblings(vec![
            POp::Siblings(vec![POp::Type("a".into()), POp::Type("b".into())]),
            POp::Type("c".into()),
        ]);
        assert_eq!(optimize_pop(p).to_string(), "[type(a) type(b) type(c)]");
    }

    #[test]
    fn singleton_siblings_unwrap() {
        let p = POp::Siblings(vec![POp::Type("a".into())]);
        assert_eq!(optimize_pop(p), POp::Type("a".into()));
    }

    #[test]
    fn stacked_identical_casts_collapse() {
        assert_eq!(
            opt("CAST-NARROWING CAST-NARROWING MORPH a"),
            "cast[Narrowing](morph(type(a)))"
        );
    }

    #[test]
    fn weak_cast_absorbs() {
        assert_eq!(
            opt("CAST CAST-WIDENING MORPH a"),
            "cast[Weak](morph(type(a)))"
        );
    }

    #[test]
    fn distinct_casts_stay_stacked() {
        // CAST-NARROWING over CAST-WIDENING admits both classes; the
        // stack must be preserved (enforcement collects all wrappers).
        assert_eq!(
            opt("CAST-NARROWING CAST-WIDENING MORPH a"),
            "cast[Narrowing](cast[Widening](morph(type(a))))"
        );
    }

    #[test]
    fn nested_type_fill_collapses() {
        assert_eq!(
            opt("TYPE-FILL TYPE-FILL MUTATE a"),
            "typefill(mutate(type(a)))"
        );
    }

    #[test]
    fn structure_otherwise_preserved() {
        let src = "MORPH author [ name book [ title ] ] | MUTATE (DROP name)";
        assert_eq!(opt(src), lower(&parse(src).unwrap()).to_string());
    }
}

//! Early label analysis over algebra trees.
//!
//! The paper's two-stage type analysis (§VIII) flows candidate type sets
//! up the tree, resolves ambiguity at `closest` operators, and pushes the
//! refined sets back down. In this implementation the up/down resolution
//! happens during ξ evaluation (where the closest distances live); this
//! module provides the *static* part: collecting every label a guard
//! mentions, so mismatches can be reported before evaluation and the
//! label-to-type report can be primed.

use crate::algebra::{Op, POp};

/// Every label mentioned by the guard, in evaluation order. `NEW` labels
/// are excluded — they never need to match the source.
pub fn collect_labels(op: &Op) -> Vec<String> {
    let mut out = Vec::new();
    collect_op(op, &mut out);
    out
}

fn collect_op(op: &Op, out: &mut Vec<String>) {
    match op {
        Op::Compose(a, b) => {
            collect_op(a, out);
            collect_op(b, out);
        }
        Op::Morph(p) | Op::Mutate(p) => collect_pop(p, out),
        Op::Translate(d) => {
            for (from, _) in d {
                out.push(from.clone());
            }
        }
        Op::Cast(_, g) | Op::TypeFill(g) => collect_op(g, out),
    }
}

fn collect_pop(p: &POp, out: &mut Vec<String>) {
    match p {
        POp::Type(l) => out.push(l.clone()),
        POp::Closest { parent, children } => {
            collect_pop(parent, out);
            for c in children {
                collect_pop(c, out);
            }
        }
        POp::Siblings(items) => {
            for i in items {
                collect_pop(i, out);
            }
        }
        POp::Children(p)
        | POp::Descendants(p)
        | POp::Drop(p)
        | POp::Restrict(p)
        | POp::Clone(p) => collect_pop(p, out),
        POp::New(_) => {}
    }
}

/// True when the guard contains a `TYPE-FILL` wrapper at any level above
/// (or around) its core.
pub fn has_type_fill(op: &Op) -> bool {
    match op {
        Op::TypeFill(_) => true,
        Op::Cast(_, g) => has_type_fill(g),
        Op::Compose(a, b) => has_type_fill(a) || has_type_fill(b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower;
    use crate::lang::parse;

    fn labels(src: &str) -> Vec<String> {
        collect_labels(&lower(&parse(src).unwrap()))
    }

    #[test]
    fn labels_in_order() {
        assert_eq!(
            labels("MORPH author [ name book [ title ] ]"),
            vec!["author", "name", "book", "title"]
        );
    }

    #[test]
    fn new_labels_excluded() {
        assert_eq!(labels("MUTATE (NEW scribe) [ author ]"), vec!["author"]);
    }

    #[test]
    fn translate_sources_included() {
        assert_eq!(labels("TRANSLATE a -> b, c -> d"), vec!["a", "c"]);
    }

    #[test]
    fn type_fill_detected() {
        assert!(has_type_fill(&lower(
            &parse("CAST-WIDENING (TYPE-FILL MUTATE a [ b ])").unwrap()
        )));
        assert!(!has_type_fill(&lower(&parse("MORPH a").unwrap())));
    }
}

//! # xmorph-core
//!
//! A full reproduction of **XMorph 2.0**, the shape-polymorphic XML
//! transformation language of *Querying XML Data: As You Shape It*
//! (Dyreson & Bhowmick, ICDE 2012).
//!
//! XMorph lets a query carry a *query guard*: a declarative description of
//! the shape the query needs. Evaluating the guard (1) transforms the
//! source data into that shape — whatever shape the source happens to have
//! — and (2) statically classifies whether the transformation potentially
//! loses or manufactures information, *before* touching the data.
//!
//! The crate mirrors the paper's architecture (Fig. 8):
//!
//! * [`model`] — the formal data model (§IV): root-path types, adorned
//!   shapes with cardinalities, the closest graph and `typeDistance`.
//! * [`lang`] — lexer, AST, and parser for the XMorph 2.0 surface syntax
//!   (§III): `MORPH`, `MUTATE`, `DROP`, `TRANSLATE`, `RESTRICT`, `NEW`,
//!   `CLONE`, `CHILDREN`/`[*]`, `DESCENDANTS`/`[**]`, `COMPOSE`/`|`, and
//!   the `CAST-*` / `TYPE-FILL` type-enforcement wrappers.
//! * [`algebra`] — the operator algebra programs compile to (§VIII).
//! * [`semantics`] — the denotational shape-to-shape semantics ξ (§VI).
//! * [`analysis`] — path cardinalities, the predicted adorned shape, and
//!   the information-loss theorems (§V): inclusive / non-additive checks
//!   and the narrowing/widening/strong/weak guard classification.
//! * [`store`] — the shredder and shredded document tables (`Nodes`,
//!   `TypeToSequence`, `AdornedShapes`) over `xmorph-pagestore`, plus the
//!   exact data-backed `typeDistance`.
//! * [`render`] — the Render algorithm (§VII): Dewey-prefix closest joins,
//!   streaming document-order output.
//! * [`guard`] — the high-level [`Guard`] API tying it all together.
//! * [`engine`] — the unified [`Engine`]/[`Session`] query surface the
//!   serving layer, the CLI, and the benchmarks all go through:
//!   [`QueryRequest::builder`] in, [`QueryResponse`] (XML + typing +
//!   per-query stats) out.
//!
//! ## Quickstart
//!
//! ```
//! use xmorph_core::{Engine, QueryRequest};
//!
//! // The paper's Figure 1(a): book-rooted data.
//! let data = "<data>\
//!   <book><title>X</title><author><name>Tim</name></author></book>\
//!   <book><title>Y</title><author><name>Tim</name></author></book>\
//! </data>";
//!
//! // One engine per open store; a query asking for author-rooted data.
//! let engine = Engine::from_xml(data).unwrap();
//! let req = QueryRequest::builder("MORPH author [ name book [ title ] ]").build();
//! let out = engine.query(&req).unwrap();
//! assert!(out.xml.contains("<name>Tim</name>"));
//! ```
//!
//! [`Guard`] remains the single-document, parse-once building block
//! underneath ([`Guard::apply_to_str`] etc. still work); [`Engine`] is
//! the surface services should hold.

pub mod algebra;
pub mod analysis;
pub mod engine;
pub mod error;
pub mod guard;
pub mod infer;
pub mod lang;
pub mod model;
pub mod render;
pub mod report;
pub mod semantics;
pub mod store;

pub use engine::{
    Engine, Mutation, MutationOutcome, QueryRequest, QueryRequestBuilder, QueryResponse,
    QueryStats, Session,
};
pub use error::{MorphError, MorphResult};
pub use guard::{Guard, GuardAnalysis, GuardOutput};
pub use model::card::{Card, CardMax};
pub use model::shape::AdornedShape;
pub use model::types::{TypeId, TypeTable};
pub use report::{GuardTyping, LabelReport, LossReport};
pub use semantics::parallel::{
    apply_parallel, render_parallel, render_parallel_snapshot, ParallelOptions,
};
pub use store::mutate::MaintenanceStats;
// Re-exported because [`Mutation`] addresses vertices by Dewey number.
pub use store::shredded::{
    ColumnBytes, OpenOptions, Preload, ShredOptions, ShreddedDoc, Snapshot, TypeColumn,
};
pub use xmorph_xml::dewey::Dewey;

#[doc(hidden)]
pub use store::colseg::testing as colseg_testing;

//! Guard inference — the paper's second future-work item (§X): *"whether
//! a guard can be automatically generated from a query"* (their citation
//! \[24\]).
//!
//! The idea: a query's path expressions *are* a shape specification. We
//! take the set of rooted label paths a query navigates (extracted from
//! an XQuery by `xmorph-xqlite`'s `query_shape_paths`, or supplied
//! directly), merge them into a tree, and emit the `MORPH` guard whose
//! target shape makes every path resolve. Descendant steps (`//x`)
//! become direct children — shape-polymorphism means the guard can
//! simply *make* the data look the way the query walks it.

use std::collections::BTreeMap;

/// A label-path trie used to merge query paths into one shape.
#[derive(Debug, Default)]
struct Trie {
    children: BTreeMap<String, Trie>,
}

impl Trie {
    fn insert(&mut self, path: &[String]) {
        if let Some((first, rest)) = path.split_first() {
            self.children.entry(first.clone()).or_default().insert(rest);
        }
    }

    fn render(&self, out: &mut String) {
        let mut first = true;
        for (label, child) in &self.children {
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(label);
            if !child.children.is_empty() {
                out.push_str(" [ ");
                child.render(out);
                out.push_str(" ]");
            }
        }
    }
}

/// Build a `MORPH` guard from rooted label paths. Paths are sequences of
/// element names as a query navigates them, e.g.
/// `[["author", "name"], ["author", "book", "title"]]`. Returns `None`
/// for an empty path set.
///
/// ```
/// use xmorph_core::infer::guard_from_paths;
///
/// let guard = guard_from_paths(&[
///     vec!["author".into(), "name".into()],
///     vec!["author".into(), "book".into(), "title".into()],
/// ]).unwrap();
/// assert_eq!(guard, "MORPH author [ book [ title ] name ]");
/// ```
pub fn guard_from_paths(paths: &[Vec<String>]) -> Option<String> {
    let mut trie = Trie::default();
    let mut any = false;
    for path in paths {
        if !path.is_empty() {
            trie.insert(path);
            any = true;
        }
    }
    if !any {
        return None;
    }
    let mut out = String::from("MORPH ");
    trie.render(&mut out);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Guard;

    fn paths(specs: &[&str]) -> Vec<Vec<String>> {
        specs
            .iter()
            .map(|s| s.split('/').map(|x| x.to_string()).collect())
            .collect()
    }

    #[test]
    fn single_path() {
        assert_eq!(
            guard_from_paths(&paths(&["author/name"])).unwrap(),
            "MORPH author [ name ]"
        );
    }

    #[test]
    fn merged_paths_share_prefixes() {
        assert_eq!(
            guard_from_paths(&paths(&[
                "author/name",
                "author/book/title",
                "author/book/year"
            ]))
            .unwrap(),
            "MORPH author [ book [ title year ] name ]"
        );
    }

    #[test]
    fn multiple_roots() {
        assert_eq!(
            guard_from_paths(&paths(&["author/name", "editor/name"])).unwrap(),
            "MORPH author [ name ] editor [ name ]"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(guard_from_paths(&[]), None);
        assert_eq!(guard_from_paths(&[vec![]]), None);
    }

    #[test]
    fn duplicate_paths_deduplicate() {
        assert_eq!(
            guard_from_paths(&paths(&["a/b", "a/b", "a"])).unwrap(),
            "MORPH a [ b ]"
        );
    }

    #[test]
    fn inferred_guards_parse() {
        for specs in [
            vec!["author/name"],
            vec!["author/name", "author/book/title"],
            vec!["a/b/c/d", "a/x", "q"],
        ] {
            let guard = guard_from_paths(&paths(&specs)).unwrap();
            Guard::parse(&guard).unwrap_or_else(|e| panic!("{guard}: {e}"));
        }
    }

    #[test]
    fn inferred_guard_runs_end_to_end() {
        // The §I scenario, fully automatic: infer the guard from the
        // query's paths, then transform book-rooted data.
        let guard_text = guard_from_paths(&paths(&["author/name", "author/book/title"])).unwrap();
        let guard = Guard::parse(&guard_text).unwrap();
        let data = "<data>\
            <book><title>X</title><author><name>Tim</name></author></book>\
            </data>";
        let out = guard.apply_to_str(data).unwrap();
        assert!(out.xml.contains("<author>"), "{}", out.xml);
        assert!(
            out.xml.contains("<book><title>X</title></book>"),
            "{}",
            out.xml
        );
    }
}

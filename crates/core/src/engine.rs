//! The unified query surface: [`Engine`] / [`Session`] /
//! [`QueryRequest`].
//!
//! Earlier layers of this repository accreted several ways to run a
//! guard — [`Guard::apply_to_str`], [`Guard::apply_with`], the
//! [`apply_parallel`]/[`render_parallel`] free functions, and direct
//! [`ShreddedDoc`] probes. They all still work (the free functions are
//! kept as thin `#[doc(hidden)]` wrappers), but everything that acts as
//! a *service* — the TCP server in `xmorph-server`, the `xmorph` CLI,
//! the scaling benchmarks — now goes through one funnel:
//!
//! ```
//! use xmorph_core::{Engine, QueryRequest};
//!
//! let engine = Engine::from_xml(
//!     "<data><book><title>X</title><author><name>Tim</name></author></book></data>",
//! )?;
//! let req = QueryRequest::builder("MORPH author [ name book [ title ] ]")
//!     .threads(2)
//!     .stats(true)
//!     .build();
//! let resp = engine.query(&req)?;
//! assert!(resp.xml.contains("<name>Tim</name>"));
//! assert!(resp.stats.is_some());
//! # Ok::<(), xmorph_core::MorphError>(())
//! ```
//!
//! An [`Engine`] owns one open store and its shredded document and is
//! shared across threads (`Arc<Engine>` in the server). Queries pin a
//! copy-on-write [`Snapshot`] of the document and run against that one
//! epoch; [`Engine::mutate`] is the single-writer entry point that
//! publishes the next epoch — so the server serves writes concurrently
//! with reads, and no reader ever sees a half-applied mutation. A
//! [`Session`] is the cheap per-client layer on top: it caches parsed
//! guards by source text — "the same guard will be reused for many
//! queries" (§I) — so a client replaying its guard pays parsing once.
//!
//! Every query can opt into a [`QueryStats`] record: the compile/render
//! split the paper's Fig. 10 measures, plus the delta of the store's
//! I/O counters ([`Store::io_stats_snapshot`] before minus after) and
//! of the column-cache footprint — the pages and segments *this* query
//! touched, not store-lifetime aggregates.
//!
//! [`apply_parallel`]: crate::semantics::parallel::apply_parallel
//! [`render_parallel`]: crate::semantics::parallel::render_parallel

use crate::error::{MorphError, MorphResult};
use crate::guard::Guard;
use crate::render::RenderOptions;
use crate::report::GuardTyping;
use crate::semantics::parallel::{render_parallel_snapshot, ParallelOptions};
use crate::store::shredded::{OpenOptions, ShredOptions, ShreddedDoc, Snapshot};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};
use xmorph_pagestore::{IoSnapshot, Store};
use xmorph_xml::dewey::Dewey;

/// One guard evaluation, described declaratively. Build with
/// [`QueryRequest::builder`]; the zero-configuration request (auto
/// thread count, `<result>` wrapper, no stats) is
/// `QueryRequest::builder(guard).build()`.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    guard: String,
    threads: usize,
    wrapper: Option<String>,
    collect_stats: bool,
    column_budget: Option<usize>,
}

impl QueryRequest {
    /// Start building a request for `guard` (XMorph surface syntax).
    pub fn builder(guard: impl Into<String>) -> QueryRequestBuilder {
        QueryRequestBuilder {
            req: QueryRequest {
                guard: guard.into(),
                threads: 0,
                wrapper: Some("result".to_string()),
                collect_stats: false,
                column_budget: None,
            },
        }
    }

    /// The guard program text.
    pub fn guard(&self) -> &str {
        &self.guard
    }

    /// Requested render parallelism (`0` = one worker per CPU).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a [`QueryStats`] record was requested.
    pub fn wants_stats(&self) -> bool {
        self.collect_stats
    }
}

/// Builder for [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryRequestBuilder {
    req: QueryRequest,
}

impl QueryRequestBuilder {
    /// Render worker threads: `0` (default) uses one per available
    /// CPU, `1` renders sequentially. Output is byte-identical at
    /// every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.req.threads = threads;
        self
    }

    /// Name of the synthetic wrapper element (default `result`).
    pub fn wrapper(mut self, name: impl Into<String>) -> Self {
        self.req.wrapper = Some(name.into());
        self
    }

    /// Emit the bare instance stream with no wrapper element.
    pub fn no_wrapper(mut self) -> Self {
        self.req.wrapper = None;
        self
    }

    /// Collect a [`QueryStats`] record for this query (default off —
    /// bracketing the I/O counters costs a few atomic loads).
    pub fn stats(mut self, on: bool) -> Self {
        self.req.collect_stats = on;
        self
    }

    /// Cap the document's column cache at `bytes` for this and
    /// subsequent queries (see [`ShreddedDoc::set_column_budget`] for
    /// the sharing semantics).
    pub fn column_budget(mut self, bytes: usize) -> Self {
        self.req.column_budget = Some(bytes);
        self
    }

    /// Finish the request.
    pub fn build(self) -> QueryRequest {
        self.req
    }
}

/// What one query actually cost, measured around its execution.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The compile phase: guard analysis (ξ evaluation + loss report)
    /// and typing enforcement. Parsing is excluded when a [`Session`]
    /// served a cached guard.
    pub compile: Duration,
    /// The render phase (dominates; §IX, Fig. 10).
    pub render: Duration,
    /// Render worker threads actually used.
    pub threads: usize,
    /// Store I/O this query caused: pages read/written, cache
    /// hits/misses, device wait time — the delta of
    /// [`Store::io_stats_snapshot`] across the query. On a store
    /// served to concurrent clients, overlapping queries' deltas
    /// overlap too (the counters are store-wide).
    pub io: IoSnapshot,
    /// Bytes of column data (decoded heap + mapped segments) the query
    /// faulted into the column cache — nonzero exactly when it touched
    /// types whose columns were not yet resident.
    pub column_bytes_delta: u64,
    /// Bytes of column data live snapshots keep resident beyond the
    /// document's own cache ([`ShreddedDoc::snapshot_pinned_bytes`]),
    /// measured as the query finishes. The column-cache budget counts
    /// these as already spent, since evicting cache entries cannot
    /// free them.
    pub snapshot_pinned_bytes: u64,
}

/// The transformed document plus what producing it revealed.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The rendered XML.
    pub xml: String,
    /// The typing class the loss analysis assigned (§V) — the query
    /// ran, so this class was admitted by the guard's casts.
    pub typing: GuardTyping,
    /// Execution stats, present when the request opted in.
    pub stats: Option<QueryStats>,
}

/// One open store + shredded document behind the unified query surface.
///
/// Cheap to share: all query paths take `&self`, so wrap an `Engine` in
/// an `Arc` and hand clones to every connection handler. Writes go
/// through [`Engine::mutate`], also `&self`: internally the document
/// sits behind an `RwLock`, but a query holds the read lock only long
/// enough to pin a [`Snapshot`] — the analysis and render then run
/// entirely against that immutable epoch, so readers proceed at full
/// speed while a single writer mutates and publishes the next epoch.
pub struct Engine {
    store: Store,
    doc: RwLock<ShreddedDoc>,
}

/// One document write, described declaratively for [`Engine::mutate`]
/// (and the server's `Update`/`Insert`/`Delete` opcodes).
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Replace the direct text of the node at `target`
    /// ([`ShreddedDoc::update_text`]).
    UpdateText {
        /// Dewey number of the node to retext.
        target: Dewey,
        /// New direct text (trimmed, matching the shredder).
        text: String,
    },
    /// Parse `xml` (one rooted element) and append it as the last
    /// child of `parent` ([`ShreddedDoc::insert_subtree`]).
    InsertSubtree {
        /// Dewey number of the insertion parent.
        parent: Dewey,
        /// The XML fragment to shred in.
        xml: String,
    },
    /// Insert `xml` immediately before the node at `sibling`
    /// ([`ShreddedDoc::insert_subtree_before`]).
    InsertBefore {
        /// Dewey number of the sibling to insert before.
        sibling: Dewey,
        /// The XML fragment to shred in.
        xml: String,
    },
    /// Delete the node at `target` and its whole subtree
    /// ([`ShreddedDoc::delete_subtree`]).
    DeleteSubtree {
        /// Dewey number of the subtree root to remove.
        target: Dewey,
    },
}

/// What an applied [`Mutation`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The text update landed.
    Updated,
    /// An insert landed; the new subtree root's Dewey number.
    Inserted(Dewey),
    /// A delete landed; the number of vertices removed.
    Deleted(u64),
}

impl Engine {
    /// Shred `xml` into a fresh in-memory store.
    pub fn from_xml(xml: &str) -> MorphResult<Engine> {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml)?;
        Ok(Engine::from_parts(store, doc))
    }

    /// Shred `xml` into `store` with explicit shred options.
    pub fn shred(store: Store, xml: &str, opts: &ShredOptions) -> MorphResult<Engine> {
        let doc = ShreddedDoc::shred_str_with(&store, xml, opts)?;
        Ok(Engine::from_parts(store, doc))
    }

    /// Shred a document file straight from disk into `store` without
    /// reading it into memory first: the parser keeps a bounded byte
    /// window, and with [`ShredOptions::memory_budget`] set the
    /// sort/load stage spills runs to temporary store segments instead
    /// of holding the entry set in memory — documents much larger than
    /// RAM shred in bounded space.
    pub fn shred_path(store: Store, path: &Path, opts: &ShredOptions) -> MorphResult<Engine> {
        let doc = ShreddedDoc::shred_file_with(&store, path, opts)?;
        Ok(Engine::from_parts(store, doc))
    }

    /// Shred a document pulled incrementally from any
    /// [`std::io::Read`] into `store`.
    pub fn shred_reader<R: std::io::Read>(
        store: Store,
        reader: R,
        opts: &ShredOptions,
    ) -> MorphResult<Engine> {
        let doc = ShreddedDoc::shred_reader_with(&store, reader, opts)?;
        Ok(Engine::from_parts(store, doc))
    }

    /// Open an existing store file holding a shredded document.
    pub fn open_path(path: &Path) -> MorphResult<Engine> {
        let store = Store::open(path).map_err(|e| MorphError::Store {
            op: format!("open store {}", path.display()),
            source: e,
        })?;
        Self::open_store(store)
    }

    /// Open the shredded document in an already-open store.
    pub fn open_store(store: Store) -> MorphResult<Engine> {
        Self::open_store_with(store, &OpenOptions::default())
    }

    /// [`Engine::open_store`] with explicit open options.
    pub fn open_store_with(store: Store, opts: &OpenOptions) -> MorphResult<Engine> {
        let doc = ShreddedDoc::open_with(&store, opts)?;
        Ok(Engine::from_parts(store, doc))
    }

    /// Wrap an already-open store/document pair.
    pub fn from_parts(store: Store, doc: ShreddedDoc) -> Engine {
        Engine {
            store,
            doc: RwLock::new(doc),
        }
    }

    /// The underlying shredded document (read-only probes). Holding
    /// the returned guard blocks [`Engine::mutate`]; prefer
    /// [`Engine::snapshot`] for anything longer than a probe or two.
    pub fn doc(&self) -> RwLockReadGuard<'_, ShreddedDoc> {
        self.doc.read().unwrap()
    }

    /// Pin the current epoch: an immutable view every probe of which
    /// answers from the document state as of this call, regardless of
    /// concurrent [`Engine::mutate`] calls.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.doc.read().unwrap().snapshot()
    }

    /// The document epoch: bumps once per applied mutation.
    pub fn epoch(&self) -> u64 {
        self.doc.read().unwrap().epoch()
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// A new session over this engine (per-client guard cache).
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            guards: HashMap::new(),
            queries: 0,
        }
    }

    /// Parse and run one query. Sessions amortize the parse; this
    /// entry point pays it every time.
    pub fn query(&self, req: &QueryRequest) -> MorphResult<QueryResponse> {
        let guard = Guard::parse(&req.guard)?;
        self.query_parsed(&guard, req)
    }

    /// Run an already-parsed guard under `req`'s execution knobs.
    ///
    /// The document read lock is held only long enough to pin a
    /// [`Snapshot`]; analysis and rendering then run lock-free against
    /// that one epoch, so a query never observes a half-applied
    /// mutation and never blocks the writer for its whole duration.
    pub fn query_parsed(&self, guard: &Guard, req: &QueryRequest) -> MorphResult<QueryResponse> {
        let snap = {
            let doc = self.doc.read().unwrap();
            if let Some(bytes) = req.column_budget {
                doc.set_column_budget(Some(bytes));
            }
            doc.snapshot()
        };
        let before_io = req.collect_stats.then(|| self.store.io_stats_snapshot());
        let before_cols = req.collect_stats.then(|| snap.column_bytes().total());

        let t0 = Instant::now();
        let analysis = guard.analyze_snapshot(&snap)?;
        analysis.enforce()?;
        let compile = t0.elapsed();

        let threads = if req.threads > 0 {
            req.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let popts = ParallelOptions {
            threads,
            render: RenderOptions {
                wrapper: req.wrapper.clone(),
                ..Default::default()
            },
        };
        let t1 = Instant::now();
        let xml = render_parallel_snapshot(&snap, &analysis.target, &popts)?;
        let render = t1.elapsed();

        let stats = before_io.map(|before| QueryStats {
            compile,
            render,
            threads,
            io: self.store.io_stats_snapshot().since(&before),
            column_bytes_delta: snap
                .column_bytes()
                .total()
                .saturating_sub(before_cols.unwrap_or(0)) as u64,
            snapshot_pinned_bytes: self.doc.read().unwrap().snapshot_pinned_bytes() as u64,
        });
        Ok(QueryResponse {
            xml,
            typing: analysis.loss.typing,
            stats,
        })
    }

    /// Apply one document write. Takes the document write lock for the
    /// mutation's duration; queries already running keep reading their
    /// pinned snapshots, and the next [`Engine::snapshot`] (or query)
    /// publishes the new epoch.
    pub fn mutate(&self, m: &Mutation) -> MorphResult<MutationOutcome> {
        let mut doc = self.doc.write().unwrap();
        match m {
            Mutation::UpdateText { target, text } => {
                doc.update_text(target, text)?;
                Ok(MutationOutcome::Updated)
            }
            Mutation::InsertSubtree { parent, xml } => {
                Ok(MutationOutcome::Inserted(doc.insert_subtree(parent, xml)?))
            }
            Mutation::InsertBefore { sibling, xml } => Ok(MutationOutcome::Inserted(
                doc.insert_subtree_before(sibling, xml)?,
            )),
            Mutation::DeleteSubtree { target } => {
                Ok(MutationOutcome::Deleted(doc.delete_subtree(target)?))
            }
        }
    }

    /// Shut the engine down: flush and close the store. Idempotent at
    /// the store layer; after this every further query fails with a
    /// typed store error.
    pub fn close(&self) -> MorphResult<()> {
        self.store.close().map_err(|e| MorphError::Store {
            op: "close store".to_string(),
            source: e,
        })
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("types", &self.doc().types().len())
            .field("persistent", &self.store.is_persistent())
            .finish()
    }
}

/// Per-client query state over a shared [`Engine`]: a cache of parsed
/// guards keyed by their source text. The server gives each connection
/// one session; single-program tools can use one session for their
/// whole run.
pub struct Session<'e> {
    engine: &'e Engine,
    guards: HashMap<String, Guard>,
    queries: u64,
}

impl<'e> Session<'e> {
    /// The engine this session queries.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Run one query, reusing the cached parse of its guard when this
    /// session has seen the text before. Parse failures are not
    /// cached (the client may resubmit a corrected guard).
    pub fn query(&mut self, req: &QueryRequest) -> MorphResult<QueryResponse> {
        if !self.guards.contains_key(req.guard()) {
            let parsed = Guard::parse(req.guard())?;
            self.guards.insert(req.guard().to_string(), parsed);
        }
        let guard = &self.guards[req.guard()];
        let resp = self.engine.query_parsed(guard, req);
        if resp.is_ok() {
            self.queries += 1;
        }
        resp
    }

    /// Distinct guards parsed and cached so far.
    pub fn cached_guards(&self) -> usize {
        self.guards.len()
    }

    /// Successfully served queries.
    pub fn queries_served(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author></book>\
        <book><title>Y</title><author><name>Ann</name></author></book>\
        </data>";

    #[test]
    fn engine_matches_guard_apply() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        let direct = guard.apply(&engine.doc()).unwrap().xml;
        for threads in [0usize, 1, 2, 4] {
            let req = QueryRequest::builder("MORPH author [ name book [ title ] ]")
                .threads(threads)
                .build();
            assert_eq!(engine.query(&req).unwrap().xml, direct, "threads={threads}");
        }
    }

    #[test]
    fn stats_opt_in() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let off = engine
            .query(&QueryRequest::builder("MORPH title").build())
            .unwrap();
        assert!(off.stats.is_none());
        let on = engine
            .query(&QueryRequest::builder("MORPH title").stats(true).build())
            .unwrap();
        let stats = on.stats.expect("stats requested");
        assert!(stats.threads >= 1);
    }

    #[test]
    fn no_wrapper_is_bare() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let resp = engine
            .query(
                &QueryRequest::builder("MORPH author [ name ]")
                    .no_wrapper()
                    .build(),
            )
            .unwrap();
        assert!(resp.xml.starts_with("<author>"), "{}", resp.xml);
    }

    #[test]
    fn session_caches_guard_parses() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let mut session = engine.session();
        let req = QueryRequest::builder("MORPH title").build();
        let a = session.query(&req).unwrap().xml;
        let b = session.query(&req).unwrap().xml;
        assert_eq!(a, b);
        assert_eq!(session.cached_guards(), 1);
        assert_eq!(session.queries_served(), 2);
        // A parse failure is surfaced and not cached.
        let bad = QueryRequest::builder("MORPH [[[").build();
        assert!(session.query(&bad).is_err());
        assert_eq!(session.cached_guards(), 1);
    }

    #[test]
    fn rejected_guard_reports_typed_error() {
        // Fig. 1(c): author-rooted data; dropping title while keeping
        // the book subtree is widening, which default enforcement
        // rejects (same case as the guard-level test).
        let fig1c = "<data><author><name>Tim</name>\
            <book><title>X</title><publisher><name>W</name></publisher></book>\
            <book><title>Y</title><publisher><name>V</name></publisher></book>\
            </author></data>";
        let engine = Engine::from_xml(fig1c).unwrap();
        let req = QueryRequest::builder("MORPH author [ !title name publisher [ name ] ]").build();
        match engine.query(&req) {
            Err(MorphError::Rejected { .. }) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn column_budget_applies_to_doc() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let req = QueryRequest::builder("MORPH title")
            .column_budget(1)
            .build();
        engine.query(&req).unwrap();
        assert_eq!(engine.doc().column_budget(), Some(1));
    }

    #[test]
    fn close_is_idempotent() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        engine.close().unwrap();
        engine.close().unwrap();
    }

    #[test]
    fn mutate_then_query_sees_new_epoch() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let req = QueryRequest::builder("MORPH title").build();
        assert!(engine.query(&req).unwrap().xml.contains("<title>X</title>"));
        let e0 = engine.epoch();
        let out = engine
            .mutate(&Mutation::UpdateText {
                target: "1.1.1".parse().unwrap(),
                text: "Z".to_string(),
            })
            .unwrap();
        assert_eq!(out, MutationOutcome::Updated);
        assert!(engine.epoch() > e0);
        let xml = engine.query(&req).unwrap().xml;
        assert!(xml.contains("<title>Z</title>"), "{xml}");
        assert!(!xml.contains("<title>X</title>"), "{xml}");
    }

    #[test]
    fn mutate_insert_and_delete_roundtrip() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let inserted = engine
            .mutate(&Mutation::InsertSubtree {
                parent: "1".parse().unwrap(),
                xml: "<book><title>N</title></book>".to_string(),
            })
            .unwrap();
        let MutationOutcome::Inserted(at) = inserted else {
            panic!("expected Inserted, got {inserted:?}");
        };
        assert_eq!(at.to_string(), "1.3");
        let req = QueryRequest::builder("MORPH title").build();
        assert!(engine.query(&req).unwrap().xml.contains("<title>N</title>"));
        let deleted = engine
            .mutate(&Mutation::DeleteSubtree { target: at })
            .unwrap();
        assert_eq!(deleted, MutationOutcome::Deleted(2)); // book + title
        assert!(!engine.query(&req).unwrap().xml.contains("<title>N</title>"));
    }

    #[test]
    fn pinned_snapshot_is_stable_across_mutations() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let snap = engine.snapshot();
        engine
            .mutate(&Mutation::UpdateText {
                target: "1.1.1".parse().unwrap(),
                text: "Z".to_string(),
            })
            .unwrap();
        let title = snap
            .types()
            .lookup(&["data".into(), "book".into(), "title".into()])
            .unwrap();
        let texts: Vec<String> = snap.scan_type(title).into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["X", "Y"]);
    }

    #[test]
    fn mutate_error_reports_and_leaves_doc_usable() {
        let engine = Engine::from_xml(FIG1A).unwrap();
        let err = engine.mutate(&Mutation::DeleteSubtree {
            target: "1".parse().unwrap(),
        });
        assert!(matches!(err, Err(MorphError::Mutation { .. })));
        let req = QueryRequest::builder("MORPH title").build();
        assert!(engine.query(&req).unwrap().xml.contains("<title>X</title>"));
    }
}

//! Cardinality ranges `n..m` adorning shape edges (Def. 3) and the
//! saturating arithmetic used by path cardinalities (Def. 6).

use std::fmt;

/// Upper bound of a cardinality range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CardMax {
    /// A finite maximum.
    Finite(u64),
    /// Unbounded (`*`): the paper's `m` when no finite bound holds.
    Many,
}

impl CardMax {
    fn mul(self, other: CardMax) -> CardMax {
        match (self, other) {
            // 0 absorbs even an unbounded factor: no parents ⇒ no children.
            (CardMax::Finite(0), _) | (_, CardMax::Finite(0)) => CardMax::Finite(0),
            (CardMax::Many, _) | (_, CardMax::Many) => CardMax::Many,
            (CardMax::Finite(a), CardMax::Finite(b)) => match a.checked_mul(b) {
                Some(v) => CardMax::Finite(v),
                None => CardMax::Many,
            },
        }
    }
}

impl PartialOrd for CardMax {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CardMax {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (CardMax::Many, CardMax::Many) => std::cmp::Ordering::Equal,
            (CardMax::Many, _) => std::cmp::Ordering::Greater,
            (_, CardMax::Many) => std::cmp::Ordering::Less,
            (CardMax::Finite(a), CardMax::Finite(b)) => a.cmp(b),
        }
    }
}

/// A cardinality range `min..max`: for an edge `(t, u)`, the minimum and
/// maximum number of `u`-children under any `t`-parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Card {
    /// Minimum count.
    pub min: u64,
    /// Maximum count.
    pub max: CardMax,
}

impl Card {
    /// The range `n..m`.
    pub fn new(min: u64, max: CardMax) -> Card {
        Card { min, max }
    }

    /// The exact range `n..n`.
    pub fn exactly(n: u64) -> Card {
        Card {
            min: n,
            max: CardMax::Finite(n),
        }
    }

    /// `1..1` — the multiplicative identity (and the paper's "up the
    /// shape" cardinality).
    pub fn one() -> Card {
        Card::exactly(1)
    }

    /// `0..0` — the leaf-boundary edge cardinality.
    pub fn zero() -> Card {
        Card::exactly(0)
    }

    /// `min..*`.
    pub fn at_least(min: u64) -> Card {
        Card {
            min,
            max: CardMax::Many,
        }
    }

    /// Pointwise product — how cardinalities compose along a path
    /// (Def. 6): `pathCard = (n1·…·nk) .. (m1·…·mk)`. Also available as
    /// the `*` operator.
    #[allow(clippy::should_implement_trait)] // std::ops::Mul is implemented below; the named form reads better at call sites
    pub fn mul(self, other: Card) -> Card {
        Card {
            min: self.min.saturating_mul(other.min),
            max: self.max.mul(other.max),
        }
    }

    /// True when the minimum is zero (some parent has no such child).
    pub fn min_is_zero(self) -> bool {
        self.min == 0
    }

    /// Widen this range to contain `other` (used when merging parallel
    /// paths or clones).
    pub fn union(self, other: Card) -> Card {
        Card {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Encode as 17 bytes for persistence.
    pub fn to_bytes(self) -> [u8; 17] {
        let mut out = [0u8; 17];
        out[..8].copy_from_slice(&self.min.to_le_bytes());
        match self.max {
            CardMax::Finite(m) => {
                out[8] = 0;
                out[9..17].copy_from_slice(&m.to_le_bytes());
            }
            CardMax::Many => out[8] = 1,
        }
        out
    }

    /// Inverse of [`Card::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> Option<Card> {
        if b.len() < 17 {
            return None;
        }
        let min = u64::from_le_bytes(b[..8].try_into().ok()?);
        let max = match b[8] {
            0 => CardMax::Finite(u64::from_le_bytes(b[9..17].try_into().ok()?)),
            1 => CardMax::Many,
            _ => return None,
        };
        Some(Card { min, max })
    }
}

impl std::ops::Mul for Card {
    type Output = Card;

    fn mul(self, rhs: Card) -> Card {
        Card::mul(self, rhs)
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            CardMax::Finite(m) => write!(f, "{}..{}", self.min, m),
            CardMax::Many => write!(f, "{}..*", self.min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Card::exactly(1).to_string(), "1..1");
        assert_eq!(Card::new(1, CardMax::Finite(2)).to_string(), "1..2");
        assert_eq!(Card::at_least(0).to_string(), "0..*");
    }

    #[test]
    fn one_is_identity() {
        let c = Card::new(2, CardMax::Finite(5));
        assert_eq!(c.mul(Card::one()), c);
        assert_eq!(Card::one().mul(c), c);
    }

    #[test]
    fn zero_absorbs() {
        let c = Card::new(2, CardMax::Many);
        let z = Card::zero();
        assert_eq!(c.mul(z), Card::zero());
    }

    #[test]
    fn zero_min_propagates() {
        // 0..2 × 1..3 = 0..6 — minimum zero survives multiplication.
        let a = Card::new(0, CardMax::Finite(2));
        let b = Card::new(1, CardMax::Finite(3));
        assert_eq!(a.mul(b), Card::new(0, CardMax::Finite(6)));
    }

    #[test]
    fn many_propagates_unless_zeroed() {
        let many = Card::at_least(1);
        let two = Card::exactly(2);
        assert_eq!(many.mul(two), Card::new(2, CardMax::Many));
        assert_eq!(many.mul(Card::zero()), Card::zero());
    }

    #[test]
    fn overflow_saturates_to_many() {
        let big = Card::exactly(u64::MAX / 2);
        let r = big.mul(Card::exactly(4));
        assert_eq!(r.max, CardMax::Many);
    }

    #[test]
    fn max_ordering() {
        assert!(CardMax::Finite(5) < CardMax::Many);
        assert!(CardMax::Finite(5) < CardMax::Finite(6));
        assert_eq!(CardMax::Many.max(CardMax::Finite(9)), CardMax::Many);
    }

    #[test]
    fn union_widens() {
        let a = Card::new(1, CardMax::Finite(2));
        let b = Card::new(0, CardMax::Finite(7));
        assert_eq!(a.union(b), Card::new(0, CardMax::Finite(7)));
    }

    #[test]
    fn byte_round_trip() {
        for c in [
            Card::one(),
            Card::zero(),
            Card::at_least(3),
            Card::new(2, CardMax::Finite(9)),
        ] {
            assert_eq!(Card::from_bytes(&c.to_bytes()), Some(c));
        }
    }
}

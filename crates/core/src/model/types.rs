//! Root-path types.
//!
//! The paper's default `typeOf` (§IV): *"the type is specified as a
//! concatenation of the names of the elements on the path from the data
//! root to the vertex"*. Two consequences this crate exploits everywhere:
//!
//! 1. Types form a tree — the data guide — because a type's parent is the
//!    type of its path minus the last name.
//! 2. Every instance of a type sits at the same depth, so the closest
//!    join can locate least common ancestors at a known Dewey level (§VII).

use std::collections::HashMap;
use std::fmt;

/// Interned identifier of a type (an index into a [`TypeTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct TypeInfo {
    /// Element names from the root, e.g. `["data", "book", "author"]`.
    path: Vec<String>,
    parent: Option<TypeId>,
}

/// Interning table of root-path types for one data collection.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    infos: Vec<TypeInfo>,
    by_path: HashMap<Vec<String>, TypeId>,
    /// Children of each type keyed by their last path name, indexed by
    /// the parent's `TypeId`. The shredder interns one type per element
    /// via [`TypeTable::intern_child`]; this index answers the hot
    /// already-interned case without cloning or hashing the full path.
    child_names: Vec<HashMap<String, TypeId>>,
    /// Root types (single-name paths) by name.
    root_names: HashMap<String, TypeId>,
}

impl TypeTable {
    /// Empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Number of distinct types.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if no types are interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Intern the type for `path`, interning all ancestor paths too.
    pub fn intern(&mut self, path: &[String]) -> TypeId {
        assert!(!path.is_empty(), "type path cannot be empty");
        if let Some(&id) = self.by_path.get(path) {
            return id;
        }
        let parent = if path.len() > 1 {
            Some(self.intern(&path[..path.len() - 1]))
        } else {
            None
        };
        let id = TypeId(self.infos.len() as u32);
        self.infos.push(TypeInfo {
            path: path.to_vec(),
            parent,
        });
        self.by_path.insert(path.to_vec(), id);
        self.child_names.push(HashMap::new());
        let name = path.last().expect("non-empty path").clone();
        match parent {
            Some(p) => {
                self.child_names[p.index()].insert(name, id);
            }
            None => {
                self.root_names.insert(name, id);
            }
        }
        id
    }

    /// Intern a child type: the parent's path extended by `name`.
    pub fn intern_child(&mut self, parent: TypeId, name: &str) -> TypeId {
        if let Some(&id) = self.child_names[parent.index()].get(name) {
            return id;
        }
        let mut path = self.infos[parent.index()].path.clone();
        path.push(name.to_string());
        let id = TypeId(self.infos.len() as u32);
        self.infos.push(TypeInfo {
            path: path.clone(),
            parent: Some(parent),
        });
        self.by_path.insert(path, id);
        self.child_names.push(HashMap::new());
        self.child_names[parent.index()].insert(name.to_string(), id);
        id
    }

    /// Look up a type by its exact path.
    pub fn lookup(&self, path: &[String]) -> Option<TypeId> {
        self.by_path.get(path).copied()
    }

    /// The root path of names for a type.
    pub fn path(&self, id: TypeId) -> &[String] {
        &self.infos[id.index()].path
    }

    /// The element name of the type (last path segment).
    pub fn name(&self, id: TypeId) -> &str {
        self.infos[id.index()].path.last().expect("non-empty path")
    }

    /// The parent type (path minus last segment), or `None` for roots.
    pub fn parent(&self, id: TypeId) -> Option<TypeId> {
        self.infos[id.index()].parent
    }

    /// Depth of the type: roots are at depth 0. Equals the shared depth
    /// of every instance.
    pub fn depth(&self, id: TypeId) -> usize {
        self.infos[id.index()].path.len() - 1
    }

    /// Dewey length of instances of this type (root instances have
    /// length 1).
    pub fn dewey_len(&self, id: TypeId) -> usize {
        self.infos[id.index()].path.len()
    }

    /// Dotted display name, e.g. `data.book.author`.
    pub fn dotted(&self, id: TypeId) -> String {
        self.infos[id.index()].path.join(".")
    }

    /// All type ids, in interning order.
    pub fn ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.infos.len() as u32).map(TypeId)
    }

    /// Types matching a guard label (§VI): a bare label matches every
    /// type whose element name equals it; a dotted label such as
    /// `book.author` matches types whose path *ends with* those segments
    /// (the paper's disambiguation device).
    pub fn matching(&self, label: &str) -> Vec<TypeId> {
        let segments: Vec<&str> = label.split('.').collect();
        self.ids()
            .filter(|&id| {
                let path = self.path(id);
                path.len() >= segments.len()
                    && path[path.len() - segments.len()..]
                        .iter()
                        .zip(&segments)
                        .all(|(p, s)| p == s)
            })
            .collect()
    }

    /// Length of the common path prefix of two types (≥ 1 when both
    /// types come from the same rooted document; 0 when their roots
    /// differ).
    pub fn common_prefix_len(&self, a: TypeId, b: TypeId) -> usize {
        let pa = self.path(a);
        let pb = self.path(b);
        pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count()
    }

    /// Tree distance between the two types *in the data guide* — the
    /// lower bound on (and usual value of) the paper's `typeDistance`.
    /// The exact data-backed value lives on
    /// [`crate::store::shredded::ShreddedDoc::type_distance_exact`].
    pub fn guide_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let l = self.common_prefix_len(a, b);
        if l == 0 {
            return None;
        }
        Some(self.path(a).len() + self.path(b).len() - 2 * l)
    }

    /// Serialize the table (paths only) for persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.infos.len() as u32).to_le_bytes());
        for info in &self.infos {
            out.extend_from_slice(&(info.path.len() as u32).to_le_bytes());
            for seg in &info.path {
                out.extend_from_slice(&(seg.len() as u32).to_le_bytes());
                out.extend_from_slice(seg.as_bytes());
            }
        }
        out
    }

    /// Inverse of [`TypeTable::to_bytes`]. Interning order is preserved,
    /// so `TypeId`s remain stable across a save/load cycle.
    pub fn from_bytes(bytes: &[u8]) -> Option<TypeTable> {
        let mut table = TypeTable::new();
        let mut off = 0usize;
        let read_u32 = |bytes: &[u8], off: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(bytes.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            Some(v)
        };
        let n = read_u32(bytes, &mut off)?;
        // Torn shape bytes must decode to `None`, not panic or balloon:
        // every entry and path segment costs at least 4 bytes, so a
        // count the remaining bytes cannot hold is corruption.
        if n as usize > bytes.len() / 4 {
            return None;
        }
        for _ in 0..n {
            let plen = read_u32(bytes, &mut off)? as usize;
            if plen == 0 || plen > (bytes.len() - off) / 4 {
                return None;
            }
            let mut path = Vec::with_capacity(plen);
            for _ in 0..plen {
                let slen = read_u32(bytes, &mut off)? as usize;
                let seg = std::str::from_utf8(bytes.get(off..off + slen)?).ok()?;
                off += slen;
                path.push(seg.to_string());
            }
            table.intern(&path);
        }
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = TypeTable::new();
        let a = t.intern(&p(&["data", "book"]));
        let b = t.intern(&p(&["data", "book"]));
        assert_eq!(a, b);
        assert_eq!(t.len(), 2); // data + data.book
    }

    #[test]
    fn ancestors_are_interned() {
        let mut t = TypeTable::new();
        let author = t.intern(&p(&["data", "book", "author"]));
        assert_eq!(t.depth(author), 2);
        let book = t.parent(author).unwrap();
        assert_eq!(t.name(book), "book");
        let data = t.parent(book).unwrap();
        assert_eq!(t.name(data), "data");
        assert_eq!(t.parent(data), None);
    }

    #[test]
    fn label_matching_bare_and_dotted() {
        let mut t = TypeTable::new();
        let book_author = t.intern(&p(&["d", "book", "author"]));
        let journal_author = t.intern(&p(&["d", "journal", "author"]));
        let both = t.matching("author");
        assert_eq!(both.len(), 2);
        assert_eq!(t.matching("book.author"), vec![book_author]);
        assert_eq!(t.matching("journal.author"), vec![journal_author]);
        assert!(t.matching("editor").is_empty());
    }

    #[test]
    fn guide_distance_examples() {
        let mut t = TypeTable::new();
        // Fig 1(a): data/book/{title, author/name, publisher/name}
        let title = t.intern(&p(&["data", "book", "title"]));
        let publisher = t.intern(&p(&["data", "book", "publisher"]));
        let author_name = t.intern(&p(&["data", "book", "author", "name"]));
        assert_eq!(t.guide_distance(title, publisher), Some(2));
        assert_eq!(t.guide_distance(publisher, author_name), Some(3));
        assert_eq!(t.guide_distance(title, title), Some(0));
        let book = t.parent(title).unwrap();
        assert_eq!(t.guide_distance(book, author_name), Some(2));
    }

    #[test]
    fn distance_none_for_disjoint_roots() {
        let mut t = TypeTable::new();
        let a = t.intern(&p(&["a", "x"]));
        let b = t.intern(&p(&["b", "y"]));
        assert_eq!(t.guide_distance(a, b), None);
    }

    #[test]
    fn serialization_round_trip_preserves_ids() {
        let mut t = TypeTable::new();
        let ids: Vec<TypeId> = [
            p(&["data"]),
            p(&["data", "book"]),
            p(&["data", "book", "title"]),
            p(&["data", "book", "author"]),
        ]
        .iter()
        .map(|path| t.intern(path))
        .collect();
        let bytes = t.to_bytes();
        let t2 = TypeTable::from_bytes(&bytes).unwrap();
        assert_eq!(t2.len(), t.len());
        for id in ids {
            assert_eq!(t2.path(id), t.path(id));
        }
    }

    #[test]
    fn dotted_name() {
        let mut t = TypeTable::new();
        let id = t.intern(&p(&["data", "book", "author"]));
        assert_eq!(t.dotted(id), "data.book.author");
    }
}

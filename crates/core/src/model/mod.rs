//! The formal data model of §IV: types, cardinalities, adorned shapes,
//! and the closest graph.

pub mod card;
pub mod closest;
pub mod shape;
pub mod types;

//! The closest graph (Def. 1) and closest relation (Def. 2).
//!
//! The closest graph relates every pair of vertices whose tree distance
//! equals the *type distance* — the minimum distance over all vertex
//! pairs of those two types. This module materializes the graph for
//! in-memory documents (O(n²), used by examples, tests, and the
//! theorem-validation property tests; the renderer never materializes it,
//! exactly as §VII prescribes) and computes the exact, data-backed
//! `typeDistance`.

use crate::model::types::{TypeId, TypeTable};
use std::collections::{BTreeMap, BTreeSet};
use xmorph_xml::dewey::Dewey;
use xmorph_xml::dom::Document;

/// A materialized closest graph over Dewey-identified vertices. Edges are
/// undirected and stored with endpoints ordered (`a < b`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClosestGraph {
    /// All vertices.
    pub vertices: BTreeSet<Dewey>,
    /// Undirected closest edges, endpoints ordered.
    pub edges: BTreeSet<(Dewey, Dewey)>,
}

impl ClosestGraph {
    /// Closest-graph subset (Def. 5): `self ⊆ other` iff both the vertex
    /// and edge sets are subsets.
    pub fn is_subset_of(&self, other: &ClosestGraph) -> bool {
        self.vertices.is_subset(&other.vertices) && self.edges.is_subset(&other.edges)
    }

    /// Number of closest edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges present in `self` but not `other` (diagnostics).
    pub fn edges_missing_from(&self, other: &ClosestGraph) -> Vec<(Dewey, Dewey)> {
        self.edges.difference(&other.edges).cloned().collect()
    }
}

/// The typed vertex list of a document: each element (and attribute — but
/// attributes are already elements in our model builders) with its type
/// and Dewey number.
pub fn typed_vertices(doc: &Document) -> (TypeTable, Vec<(Dewey, TypeId)>) {
    let mut types = TypeTable::new();
    let mut out = Vec::new();
    for (node, dewey) in doc.dewey_map() {
        let path = doc.root_path(node);
        let id = types.intern(&path);
        out.push((dewey.clone(), id));
        // Attributes become child vertices `@name`, numbered after the
        // element children (order does not affect distances).
        for (i, (attr, _)) in doc.attrs(node).iter().enumerate() {
            let mut apath = path.clone();
            apath.push(format!("@{attr}"));
            let aid = types.intern(&apath);
            let ord = doc.children(node).count() as u32 + 1 + i as u32;
            out.push((dewey.child(ord), aid));
        }
    }
    (types, out)
}

/// Exact `typeDistance` for every pair of types present, computed by
/// brute force over the vertex list — O(n²), small documents only.
pub fn type_distances(vertices: &[(Dewey, TypeId)]) -> BTreeMap<(TypeId, TypeId), usize> {
    let mut out: BTreeMap<(TypeId, TypeId), usize> = BTreeMap::new();
    for (i, (da, ta)) in vertices.iter().enumerate() {
        for (db, tb) in &vertices[i..] {
            let d = da.distance(db);
            let key = if ta <= tb { (*ta, *tb) } else { (*tb, *ta) };
            match out.get_mut(&key) {
                Some(best) => {
                    if d < *best {
                        *best = d;
                    }
                }
                None => {
                    out.insert(key, d);
                }
            }
        }
    }
    out
}

/// Materialize the closest graph of a document (Defs. 1–2). Self-pairs
/// (`v == v`) are excluded; distinct same-type pairs participate like any
/// other pair.
pub fn closest_graph(doc: &Document) -> ClosestGraph {
    let (_, vertices) = typed_vertices(doc);
    closest_graph_of(&vertices)
}

/// Materialize the closest graph of a typed vertex list.
pub fn closest_graph_of(vertices: &[(Dewey, TypeId)]) -> ClosestGraph {
    let dist = type_distances(vertices);
    let mut graph = ClosestGraph::default();
    for (d, _) in vertices {
        graph.vertices.insert(d.clone());
    }
    for (i, (da, ta)) in vertices.iter().enumerate() {
        for (db, tb) in &vertices[i + 1..] {
            let key = if ta <= tb { (*ta, *tb) } else { (*tb, *ta) };
            if da.distance(db) == dist[&key] {
                let (x, y) = if da <= db {
                    (da.clone(), db.clone())
                } else {
                    (db.clone(), da.clone())
                };
                graph.edges.insert((x, y));
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1a() -> Document {
        Document::parse_str(
            "<data>\
               <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
               <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
             </data>",
        )
        .unwrap()
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn paper_closest_example() {
        // §VII: publisher 1.1.3 is closest to title 1.1.1 (distance 2 =
        // typeDistance) but not to title 1.2.1 (distance 4).
        let g = closest_graph(&fig1a());
        assert!(g.edges.contains(&(d("1.1.1"), d("1.1.3"))));
        assert!(!g.edges.contains(&(d("1.1.3"), d("1.2.1"))));
        assert!(!g.edges.contains(&(d("1.2.1"), d("1.1.3"))));
    }

    #[test]
    fn parent_child_pairs_are_closest() {
        let g = closest_graph(&fig1a());
        // book 1.1 — title 1.1.1 at distance 1 = typeDistance(book,title).
        assert!(g.edges.contains(&(d("1.1"), d("1.1.1"))));
        // author 1.1.2 — name 1.1.2.1.
        assert!(g.edges.contains(&(d("1.1.2"), d("1.1.2.1"))));
    }

    #[test]
    fn same_type_pairs_never_closest() {
        // Def. 2 ranges over all vertex pairs including v = w, so
        // typeDistance(t, t) = 0; two *distinct* books at distance 2 are
        // therefore never closest.
        let g = closest_graph(&fig1a());
        assert!(!g.edges.contains(&(d("1.1"), d("1.2"))));
    }

    #[test]
    fn type_distance_exact_values() {
        let (types, vertices) = typed_vertices(&fig1a());
        let dist = type_distances(&vertices);
        let find = |dotted: &str| {
            let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
            types.lookup(&path).unwrap()
        };
        let title = find("data.book.title");
        let publisher = find("data.book.publisher");
        let author_name = find("data.book.author.name");
        let key = |a: TypeId, b: TypeId| if a <= b { (a, b) } else { (b, a) };
        assert_eq!(dist[&key(title, publisher)], 2);
        assert_eq!(dist[&key(publisher, author_name)], 3);
        assert_eq!(dist[&key(title, title)], 0);
    }

    #[test]
    fn co_occurrence_failure_raises_distance() {
        // author and editor never share a book, so their true distance is
        // 4 (via <data>), not the guide distance 2 (via <book>).
        let doc = Document::parse_str("<data><book><author/></book><book><editor/></book></data>")
            .unwrap();
        let (types, vertices) = typed_vertices(&doc);
        let dist = type_distances(&vertices);
        let author = types
            .lookup(&["data".into(), "book".into(), "author".into()])
            .unwrap();
        let editor = types
            .lookup(&["data".into(), "book".into(), "editor".into()])
            .unwrap();
        let key = if author <= editor {
            (author, editor)
        } else {
            (editor, author)
        };
        assert_eq!(dist[&key], 4);
        // The guide distance is the (wrong, here) lower bound.
        assert_eq!(types.guide_distance(author, editor), Some(2));
    }

    #[test]
    fn subset_relation() {
        let g = closest_graph(&fig1a());
        let mut smaller = g.clone();
        let first_edge = smaller.edges.iter().next().cloned().unwrap();
        smaller.edges.remove(&first_edge);
        assert!(smaller.is_subset_of(&g));
        assert!(!g.is_subset_of(&smaller));
        assert_eq!(g.edges_missing_from(&smaller), vec![first_edge]);
    }

    #[test]
    fn attributes_join_the_graph() {
        let doc = Document::parse_str(r#"<d><a id="7"><b/></a></d>"#).unwrap();
        let (types, vertices) = typed_vertices(&doc);
        assert!(types
            .lookup(&["d".into(), "a".into(), "@id".into()])
            .is_some());
        // Vertices: d, a, b, @id.
        assert_eq!(vertices.len(), 4);
    }
}

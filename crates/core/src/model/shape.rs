//! Adorned shapes (Def. 3): the data guide of a collection, with each
//! parent/child type edge adorned by a cardinality range.

use crate::model::card::{Card, CardMax};
use crate::model::types::{TypeId, TypeTable};
use std::collections::HashMap;
use std::fmt;
use xmorph_xml::dom::Document;

/// The adorned shape of a data collection: a forest over root-path types
/// where the edge into each type `u` carries `n..m` — the minimum and
/// maximum number of `u`-children under any parent instance.
#[derive(Debug, Clone)]
pub struct AdornedShape {
    types: TypeTable,
    /// Cardinality of the edge from `parent(t)` into `t` (indexed by
    /// `TypeId`). Root types carry `1..1`.
    edge_card: Vec<Card>,
    /// Children of each type, in first-encounter order.
    children: Vec<Vec<TypeId>>,
    roots: Vec<TypeId>,
    /// Instance count of each type in the collection.
    counts: Vec<u64>,
}

impl AdornedShape {
    /// Build the shape of a parsed document.
    pub fn from_document(doc: &Document) -> AdornedShape {
        let mut b = ShapeBuilder::new();
        if let Some(root) = doc.root_element() {
            build_rec(doc, root, &mut b);
        }
        b.finish()
    }

    /// Start an event-driven builder (used by the shredder).
    pub fn builder() -> ShapeBuilder {
        ShapeBuilder::new()
    }

    /// The interned type table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Cardinality of the edge from `t`'s parent into `t`.
    pub fn card(&self, t: TypeId) -> Card {
        self.edge_card[t.index()]
    }

    /// Child types of `t`.
    pub fn children(&self, t: TypeId) -> &[TypeId] {
        &self.children[t.index()]
    }

    /// Root types (no incoming edge) — the paper's `roots(S)`.
    pub fn roots(&self) -> &[TypeId] {
        &self.roots
    }

    /// All types — the paper's `types(S)`.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        self.types.ids()
    }

    /// Number of instances of `t` in the collection.
    pub fn instance_count(&self, t: TypeId) -> u64 {
        self.counts[t.index()]
    }

    /// Total number of vertices in the collection.
    pub fn total_instances(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Override the cardinality of `t`'s incoming edge — used by tests to
    /// model hypotheticals (the paper's "suppose the name of an author is
    /// optional" example in §V-B).
    pub fn set_card(&mut self, t: TypeId, card: Card) {
        self.edge_card[t.index()] = card;
    }

    /// Intern `name` as a child type of `parent`, growing the shape's
    /// parallel arrays when the type is new. A new type starts with
    /// `0..0` cardinality and zero instances — the mutation path widens
    /// the card as it counts the inserted instances, and `min` stays 0
    /// because every pre-existing parent instance lacks the new child.
    pub fn intern_child_type(&mut self, parent: TypeId, name: &str) -> TypeId {
        let id = self.types.intern_child(parent, name);
        if id.index() == self.edge_card.len() {
            self.edge_card.push(Card::zero());
            self.children.push(Vec::new());
            self.counts.push(0);
            self.children[parent.index()].push(id);
        }
        id
    }

    /// Adjust the instance count of `t` by `delta` (saturating at 0) —
    /// the mutation path's exact count maintenance.
    pub fn add_instances(&mut self, t: TypeId, delta: i64) {
        let n = &mut self.counts[t.index()];
        *n = if delta < 0 {
            n.saturating_sub(delta.unsigned_abs())
        } else {
            n.saturating_add(delta as u64)
        };
    }

    /// Path cardinality (Def. 6): from `t` to `s`, travel up from `t` to
    /// the least common ancestor (`1..1` per step) and multiply the edge
    /// cardinalities going down to `s`. Returns `None` when the two types
    /// share no root.
    pub fn path_card(&self, t: TypeId, s: TypeId) -> Option<Card> {
        let lcp = self.types.common_prefix_len(t, s);
        if lcp == 0 {
            return None;
        }
        // Walk from `s` up to the LCA, multiplying edge cards.
        let mut card = Card::one();
        let mut cur = s;
        while self.types.dewey_len(cur) > lcp {
            card = card.mul(self.card(cur));
            cur = self.types.parent(cur).expect("above-LCA type has a parent");
        }
        Some(card)
    }

    /// Serialize (type table + cards + counts).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let tbytes = self.types.to_bytes();
        out.extend_from_slice(&(tbytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&tbytes);
        for i in 0..self.types.len() {
            out.extend_from_slice(&self.edge_card[i].to_bytes());
            out.extend_from_slice(&self.counts[i].to_le_bytes());
        }
        out
    }

    /// Inverse of [`AdornedShape::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<AdornedShape> {
        let tlen = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let types = TypeTable::from_bytes(bytes.get(4..4 + tlen)?)?;
        let mut off = 4 + tlen;
        let mut edge_card = Vec::with_capacity(types.len());
        let mut counts = Vec::with_capacity(types.len());
        for _ in 0..types.len() {
            edge_card.push(Card::from_bytes(bytes.get(off..off + 17)?)?);
            off += 17;
            counts.push(u64::from_le_bytes(
                bytes.get(off..off + 8)?.try_into().ok()?,
            ));
            off += 8;
        }
        Some(Self::assemble(types, edge_card, counts))
    }

    fn assemble(types: TypeTable, edge_card: Vec<Card>, counts: Vec<u64>) -> AdornedShape {
        let mut children: Vec<Vec<TypeId>> = vec![Vec::new(); types.len()];
        let mut roots = Vec::new();
        for id in types.ids() {
            match types.parent(id) {
                Some(p) => children[p.index()].push(id),
                None => roots.push(id),
            }
        }
        AdornedShape {
            types,
            edge_card,
            children,
            roots,
            counts,
        }
    }
}

impl fmt::Display for AdornedShape {
    /// Pretty-print the shape tree with cardinalities, matching the
    /// paper's Figure 5 presentation, e.g.:
    /// ```text
    /// data
    ///   book 1..2
    ///     title 1..1
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            shape: &AdornedShape,
            t: TypeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            if depth == 0 {
                writeln!(f, "{}", shape.types.name(t))?;
            } else {
                writeln!(f, "{} {}", shape.types.name(t), shape.card(t))?;
            }
            for &c in shape.children(t) {
                rec(shape, c, depth + 1, f)?;
            }
            Ok(())
        }
        for &r in &self.roots {
            rec(self, r, 0, f)?;
        }
        Ok(())
    }
}

fn build_rec(doc: &Document, node: xmorph_xml::NodeId, b: &mut ShapeBuilder) {
    b.open(doc.name(node));
    for (attr, _) in doc.attrs(node) {
        b.attribute(attr);
    }
    for child in doc.children(node) {
        build_rec(doc, child, b);
    }
    b.close();
}

struct Frame {
    type_id: TypeId,
    child_counts: HashMap<TypeId, u64>,
}

#[derive(Default, Clone, Copy)]
struct EdgeStat {
    /// Number of parent instances with at least one such child.
    parents_with: u64,
    min_nonzero: u64,
    max: u64,
}

/// Event-driven shape builder: `open`/`attribute`/`close` mirror a SAX
/// stream. The same builder serves DOM construction and the streaming
/// shredder.
pub struct ShapeBuilder {
    types: TypeTable,
    stack: Vec<Frame>,
    edges: HashMap<TypeId, EdgeStat>,
    counts: HashMap<TypeId, u64>,
    roots: Vec<TypeId>,
}

impl Default for ShapeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ShapeBuilder {
    /// Fresh builder.
    pub fn new() -> ShapeBuilder {
        ShapeBuilder {
            types: TypeTable::new(),
            stack: Vec::new(),
            edges: HashMap::new(),
            counts: HashMap::new(),
            roots: Vec::new(),
        }
    }

    /// Enter an element named `name`; returns its type.
    pub fn open(&mut self, name: &str) -> TypeId {
        let type_id = match self.stack.last() {
            Some(frame) => {
                let parent = frame.type_id;
                self.types.intern_child(parent, name)
            }
            None => {
                let id = self.types.intern(&[name.to_string()]);
                if !self.roots.contains(&id) {
                    self.roots.push(id);
                }
                id
            }
        };
        if let Some(frame) = self.stack.last_mut() {
            *frame.child_counts.entry(type_id).or_insert(0) += 1;
        }
        *self.counts.entry(type_id).or_insert(0) += 1;
        self.stack.push(Frame {
            type_id,
            child_counts: HashMap::new(),
        });
        type_id
    }

    /// Record an attribute vertex on the currently open element. Typed as
    /// a child with name `@attr` (paper §IV counts attributes as
    /// vertices).
    pub fn attribute(&mut self, name: &str) -> TypeId {
        let id = self.open(&format!("@{name}"));
        self.close();
        id
    }

    /// Leave the current element, folding its child counts into the edge
    /// statistics.
    pub fn close(&mut self) {
        let frame = self.stack.pop().expect("close without open");
        for (child_type, count) in frame.child_counts {
            let stat = self.edges.entry(child_type).or_default();
            stat.parents_with += 1;
            stat.max = stat.max.max(count);
            stat.min_nonzero = if stat.parents_with == 1 {
                count
            } else {
                stat.min_nonzero.min(count)
            };
        }
    }

    /// Current type on top of the stack (for the shredder).
    pub fn current_type(&self) -> Option<TypeId> {
        self.stack.last().map(|f| f.type_id)
    }

    /// The (partially built) type table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Finalize into an [`AdornedShape`]. Panics if elements remain open.
    pub fn finish(self) -> AdornedShape {
        assert!(self.stack.is_empty(), "finish() with open elements");
        let n = self.types.len();
        let mut edge_card = vec![Card::one(); n];
        let mut counts = vec![0u64; n];
        for id in self.types.ids() {
            counts[id.index()] = self.counts.get(&id).copied().unwrap_or(0);
            if let Some(parent) = self.types.parent(id) {
                let stat = self.edges.get(&id).copied().unwrap_or_default();
                let parent_instances = self.counts.get(&parent).copied().unwrap_or(0);
                let min = if stat.parents_with < parent_instances {
                    0
                } else {
                    stat.min_nonzero
                };
                edge_card[id.index()] = Card::new(min, CardMax::Finite(stat.max));
            }
        }
        AdornedShape::assemble(self.types, edge_card, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 1(a).
    fn fig1a() -> Document {
        Document::parse_str(
            "<data>\
               <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
               <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
             </data>",
        )
        .unwrap()
    }

    /// Paper Figure 1(c): normalized, author-grouped.
    fn fig1c() -> Document {
        Document::parse_str(
            "<data>\
               <author><name>Tim</name>\
                 <book><title>X</title><publisher><name>W</name></publisher></book>\
                 <book><title>Y</title><publisher><name>V</name></publisher></book>\
               </author>\
             </data>",
        )
        .unwrap()
    }

    fn ty(shape: &AdornedShape, dotted: &str) -> TypeId {
        let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
        shape
            .types()
            .lookup(&path)
            .unwrap_or_else(|| panic!("no type {dotted}"))
    }

    #[test]
    fn fig1a_shape_cards() {
        let shape = AdornedShape::from_document(&fig1a());
        // Two books under one data: 2..2.
        assert_eq!(shape.card(ty(&shape, "data.book")), Card::exactly(2));
        // Each book has exactly one title/author/publisher.
        assert_eq!(shape.card(ty(&shape, "data.book.title")), Card::one());
        assert_eq!(shape.card(ty(&shape, "data.book.author.name")), Card::one());
        assert_eq!(shape.instance_count(ty(&shape, "data.book")), 2);
    }

    #[test]
    fn fig1c_shape_cards() {
        let shape = AdornedShape::from_document(&fig1c());
        // One author, two books under it: 1..2? No — the single author has
        // exactly two books, so min = max = 2.
        assert_eq!(shape.card(ty(&shape, "data.author.book")), Card::exactly(2));
        assert_eq!(shape.card(ty(&shape, "data.author")), Card::one());
    }

    #[test]
    fn optional_child_gets_min_zero() {
        let doc = Document::parse_str("<d><a><x/></a><a/><a><x/><x/></a></d>").unwrap();
        let shape = AdornedShape::from_document(&doc);
        let x = ty(&shape, "d.a.x");
        // One of the three <a> parents has no <x>: min 0, max 2.
        assert_eq!(shape.card(x), Card::new(0, CardMax::Finite(2)));
    }

    #[test]
    fn attributes_become_typed_vertices() {
        let doc = Document::parse_str(r#"<d><a id="1"/><a id="2"/></d>"#).unwrap();
        let shape = AdornedShape::from_document(&doc);
        let at = ty(&shape, "d.a.@id");
        assert_eq!(shape.card(at), Card::one());
        assert_eq!(shape.instance_count(at), 2);
    }

    #[test]
    fn roots_and_children() {
        let shape = AdornedShape::from_document(&fig1a());
        assert_eq!(shape.roots().len(), 1);
        let data = shape.roots()[0];
        assert_eq!(shape.types().name(data), "data");
        let kids: Vec<&str> = shape
            .children(data)
            .iter()
            .map(|&c| shape.types().name(c))
            .collect();
        assert_eq!(kids, vec!["book"]);
    }

    #[test]
    fn path_card_down() {
        let shape = AdornedShape::from_document(&fig1a());
        let data = ty(&shape, "data");
        let name = ty(&shape, "data.book.author.name");
        // data → book (2..2) → author (1..1) → name (1..1) = 2..2.
        assert_eq!(shape.path_card(data, name), Some(Card::exactly(2)));
    }

    #[test]
    fn path_card_up_is_one() {
        let shape = AdornedShape::from_document(&fig1a());
        let name = ty(&shape, "data.book.author.name");
        let data = ty(&shape, "data");
        assert_eq!(shape.path_card(name, data), Some(Card::one()));
    }

    #[test]
    fn path_card_across() {
        let shape = AdornedShape::from_document(&fig1a());
        let title = ty(&shape, "data.book.title");
        let pubname = ty(&shape, "data.book.publisher.name");
        // LCA is book; down to publisher.name: 1..1 × 1..1 = 1..1.
        assert_eq!(shape.path_card(title, pubname), Some(Card::one()));
    }

    #[test]
    fn path_card_same_type() {
        let shape = AdornedShape::from_document(&fig1a());
        let title = ty(&shape, "data.book.title");
        assert_eq!(shape.path_card(title, title), Some(Card::one()));
    }

    #[test]
    fn serialization_round_trip() {
        let shape = AdornedShape::from_document(&fig1a());
        let back = AdornedShape::from_bytes(&shape.to_bytes()).unwrap();
        assert_eq!(back.types().len(), shape.types().len());
        for id in shape.type_ids() {
            assert_eq!(back.card(id), shape.card(id));
            assert_eq!(back.instance_count(id), shape.instance_count(id));
        }
        assert_eq!(back.roots(), shape.roots());
    }

    #[test]
    fn display_is_indented_tree() {
        let shape = AdornedShape::from_document(&fig1a());
        let s = shape.to_string();
        assert!(s.starts_with("data\n"), "{s}");
        assert!(s.contains("  book 2..2\n"), "{s}");
        assert!(s.contains("    title 1..1\n"), "{s}");
    }

    #[test]
    fn builder_counts_instances() {
        let shape = AdornedShape::from_document(&fig1c());
        assert_eq!(shape.instance_count(ty(&shape, "data.author.book")), 2);
        assert_eq!(
            shape.instance_count(ty(&shape, "data.author.book.title")),
            2
        );
        // data(1) + author(1) + name(1) + book(2) + title(2) +
        // publisher(2) + publisher.name(2) = 11 vertices.
        assert_eq!(shape.total_instances(), 11);
    }
}

//! Tokenizer for XMorph 2.0 programs.
//!
//! Guards are case- and whitespace-insensitive (§III); keywords are
//! recognized by case-insensitive comparison, everything else is a label.

use crate::error::{MorphError, MorphResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A label (element name, possibly dotted for disambiguation).
    Label(String),
    /// `MORPH`
    Morph,
    /// `MUTATE`
    Mutate,
    /// `DROP`
    Drop,
    /// `TRANSLATE`
    Translate,
    /// `RESTRICT`
    Restrict,
    /// `NEW`
    New,
    /// `CLONE`
    Clone,
    /// `CHILDREN`
    Children,
    /// `DESCENDANTS`
    Descendants,
    /// `COMPOSE`
    Compose,
    /// `CAST`
    Cast,
    /// `CAST-NARROWING`
    CastNarrowing,
    /// `CAST-WIDENING`
    CastWidening,
    /// `TYPE-FILL`
    TypeFill,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `|`
    Pipe,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `!`
    Bang,
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte offset where it starts.
    pub offset: usize,
}

fn is_label_start(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '@' | ':')
}

fn is_label_char(c: char) -> bool {
    is_label_start(c) || matches!(c, '-' | '.')
}

fn keyword(word: &str) -> Option<Tok> {
    match word.to_ascii_uppercase().as_str() {
        "MORPH" => Some(Tok::Morph),
        "MUTATE" => Some(Tok::Mutate),
        "DROP" => Some(Tok::Drop),
        "TRANSLATE" => Some(Tok::Translate),
        "RESTRICT" => Some(Tok::Restrict),
        "NEW" => Some(Tok::New),
        "CLONE" => Some(Tok::Clone),
        "CHILDREN" => Some(Tok::Children),
        "DESCENDANTS" => Some(Tok::Descendants),
        "COMPOSE" => Some(Tok::Compose),
        "CAST" => Some(Tok::Cast),
        "CAST-NARROWING" => Some(Tok::CastNarrowing),
        "CAST-WIDENING" => Some(Tok::CastWidening),
        "TYPE-FILL" => Some(Tok::TypeFill),
        _ => None,
    }
}

/// Tokenize a guard program.
pub fn lex(src: &str) -> MorphResult<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let (offset, c) = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    offset,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    offset,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    offset,
                });
                i += 1;
            }
            '|' => {
                out.push(Token {
                    tok: Tok::Pipe,
                    offset,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    offset,
                });
                i += 1;
            }
            '!' => {
                out.push(Token {
                    tok: Tok::Bang,
                    offset,
                });
                i += 1;
            }
            '*' => {
                if matches!(chars.get(i + 1), Some((_, '*'))) {
                    out.push(Token {
                        tok: Tok::StarStar,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Star,
                        offset,
                    });
                    i += 1;
                }
            }
            '-' if matches!(chars.get(i + 1), Some((_, '>'))) => {
                out.push(Token {
                    tok: Tok::Arrow,
                    offset,
                });
                i += 2;
            }
            c if is_label_start(c) => {
                let start = i;
                while i < chars.len() && is_label_char(chars[i].1) {
                    // Stop before a `-` that begins an `->` arrow.
                    if chars[i].1 == '-' && matches!(chars.get(i + 1), Some((_, '>'))) {
                        break;
                    }
                    i += 1;
                }
                let end = if i < chars.len() {
                    chars[i].0
                } else {
                    src.len()
                };
                let word = &src[offset..end];
                let tok = keyword(word).unwrap_or_else(|| Tok::Label(word.to_string()));
                out.push(Token {
                    tok,
                    offset: chars[start].0,
                });
            }
            other => {
                return Err(MorphError::Parse {
                    message: format!("unexpected character {other:?}"),
                    offset,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("morph MORPH Morph"),
            vec![Tok::Morph, Tok::Morph, Tok::Morph]
        );
        assert_eq!(
            toks("cast-widening type-fill"),
            vec![Tok::CastWidening, Tok::TypeFill]
        );
    }

    #[test]
    fn labels_and_brackets() {
        assert_eq!(
            toks("author [ name book [ title ] ]"),
            vec![
                Tok::Label("author".into()),
                Tok::LBracket,
                Tok::Label("name".into()),
                Tok::Label("book".into()),
                Tok::LBracket,
                Tok::Label("title".into()),
                Tok::RBracket,
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn stars_and_bang() {
        assert_eq!(
            toks("author [* book [** x]] !title"),
            vec![
                Tok::Label("author".into()),
                Tok::LBracket,
                Tok::Star,
                Tok::Label("book".into()),
                Tok::LBracket,
                Tok::StarStar,
                Tok::Label("x".into()),
                Tok::RBracket,
                Tok::RBracket,
                Tok::Bang,
                Tok::Label("title".into()),
            ]
        );
    }

    #[test]
    fn arrow_splits_labels() {
        assert_eq!(
            toks("author->writer"),
            vec![
                Tok::Label("author".into()),
                Tok::Arrow,
                Tok::Label("writer".into())
            ]
        );
        assert_eq!(
            toks("author -> writer"),
            vec![
                Tok::Label("author".into()),
                Tok::Arrow,
                Tok::Label("writer".into())
            ]
        );
    }

    #[test]
    fn hyphenated_labels_still_work() {
        assert_eq!(toks("my-element"), vec![Tok::Label("my-element".into())]);
    }

    #[test]
    fn dotted_labels() {
        assert_eq!(toks("book.author"), vec![Tok::Label("book.author".into())]);
    }

    #[test]
    fn attribute_labels() {
        assert_eq!(toks("@id"), vec![Tok::Label("@id".into())]);
    }

    #[test]
    fn pipe_and_comma() {
        assert_eq!(
            toks("a | b, c"),
            vec![
                Tok::Label("a".into()),
                Tok::Pipe,
                Tok::Label("b".into()),
                Tok::Comma,
                Tok::Label("c".into()),
            ]
        );
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(toks("a[b]"), toks("a [ b ]"));
        assert_eq!(toks("MORPH\n\ta"), toks("morph a"));
    }

    #[test]
    fn bad_character_errors_with_offset() {
        let err = lex("author { name }").unwrap_err();
        match err {
            MorphError::Parse { offset, .. } => assert_eq!(offset, 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyword_prefix_is_still_a_label() {
        // "morphing" is a label, not the MORPH keyword.
        assert_eq!(toks("morphing"), vec![Tok::Label("morphing".into())]);
    }
}

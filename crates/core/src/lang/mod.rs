//! The XMorph 2.0 surface language (§III): lexer, AST, parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Ast, CastMode, Head, Item, Pattern};
pub use parser::parse;

//! Recursive-descent parser for XMorph 2.0 guards.
//!
//! Grammar (whitespace-insensitive, keywords case-insensitive):
//!
//! ```text
//! guard    := cast* composed
//! cast     := CAST | CAST-NARROWING | CAST-WIDENING | TYPE-FILL
//! composed := core ('|' guard)?
//!           | COMPOSE guard ',' guard
//! core     := MORPH pattern | MUTATE pattern
//!           | TRANSLATE label -> label (',' label -> label)*
//!           | '(' guard ')'
//! pattern  := item (','? item)*
//! item     := '!'? head ('[' inner ']')?
//! head     := label
//!           | '(' item ')'
//!           | DROP item | RESTRICT item | NEW label | CLONE item
//!           | CHILDREN item | DESCENDANTS item
//! inner    := ('*' | '**' | item)*
//! ```

use crate::error::{MorphError, MorphResult};
use crate::lang::ast::{Ast, CastMode, Head, Item, Pattern};
use crate::lang::lexer::{lex, Tok, Token};

/// Parse a guard program.
pub fn parse(src: &str) -> MorphResult<Ast> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let ast = p.guard()?;
    if p.pos < p.tokens.len() {
        return Err(p.err("trailing tokens after guard"));
    }
    Ok(ast)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.src_len)
    }

    fn err(&self, message: &str) -> MorphError {
        MorphError::Parse {
            message: message.to_string(),
            offset: self.offset(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> MorphResult<()> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn label(&mut self, what: &str) -> MorphResult<String> {
        match self.peek() {
            Some(Tok::Label(_)) => match self.bump() {
                Some(Tok::Label(l)) => Ok(l),
                _ => unreachable!(),
            },
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    // guard := cast* composed
    fn guard(&mut self) -> MorphResult<Ast> {
        match self.peek() {
            Some(Tok::Cast) => {
                self.bump();
                Ok(Ast::Cast(CastMode::Weak, Box::new(self.guard()?)))
            }
            Some(Tok::CastNarrowing) => {
                self.bump();
                Ok(Ast::Cast(CastMode::Narrowing, Box::new(self.guard()?)))
            }
            Some(Tok::CastWidening) => {
                self.bump();
                Ok(Ast::Cast(CastMode::Widening, Box::new(self.guard()?)))
            }
            Some(Tok::TypeFill) => {
                self.bump();
                Ok(Ast::TypeFill(Box::new(self.guard()?)))
            }
            _ => self.composed(),
        }
    }

    // composed := core ('|' guard)? | COMPOSE guard ',' guard
    fn composed(&mut self) -> MorphResult<Ast> {
        if self.eat(&Tok::Compose) {
            let first = self.guard_until_comma()?;
            self.expect(Tok::Comma, "',' between COMPOSE operands")?;
            let second = self.guard()?;
            return Ok(Ast::Compose(Box::new(first), Box::new(second)));
        }
        let core = self.core()?;
        if self.eat(&Tok::Pipe) {
            let rest = self.guard()?;
            return Ok(Ast::Compose(Box::new(core), Box::new(rest)));
        }
        Ok(core)
    }

    // The first operand of `COMPOSE g1, g2` — like `guard` but cannot
    // itself consume the comma.
    fn guard_until_comma(&mut self) -> MorphResult<Ast> {
        // Cast prefixes then a single core; pipes still compose tighter
        // than the COMPOSE comma.
        match self.peek() {
            Some(Tok::Cast) => {
                self.bump();
                Ok(Ast::Cast(
                    CastMode::Weak,
                    Box::new(self.guard_until_comma()?),
                ))
            }
            Some(Tok::CastNarrowing) => {
                self.bump();
                Ok(Ast::Cast(
                    CastMode::Narrowing,
                    Box::new(self.guard_until_comma()?),
                ))
            }
            Some(Tok::CastWidening) => {
                self.bump();
                Ok(Ast::Cast(
                    CastMode::Widening,
                    Box::new(self.guard_until_comma()?),
                ))
            }
            Some(Tok::TypeFill) => {
                self.bump();
                Ok(Ast::TypeFill(Box::new(self.guard_until_comma()?)))
            }
            _ => {
                let core = self.core()?;
                if self.eat(&Tok::Pipe) {
                    let rest = self.guard_until_comma()?;
                    return Ok(Ast::Compose(Box::new(core), Box::new(rest)));
                }
                Ok(core)
            }
        }
    }

    // core := MORPH pattern | MUTATE pattern | TRANSLATE renames | '(' guard ')'
    fn core(&mut self) -> MorphResult<Ast> {
        match self.peek() {
            Some(Tok::Morph) => {
                self.bump();
                Ok(Ast::Morph(self.pattern()?))
            }
            Some(Tok::Mutate) => {
                self.bump();
                Ok(Ast::Mutate(self.pattern()?))
            }
            Some(Tok::Translate) => {
                self.bump();
                let mut renames = Vec::new();
                loop {
                    let from = self.label("label before '->'")?;
                    self.expect(Tok::Arrow, "'->' in TRANSLATE")?;
                    let to = self.label("label after '->'")?;
                    renames.push((from, to));
                    // Another rename follows a comma only if a label comes
                    // after it (the comma might belong to COMPOSE).
                    if self.peek() == Some(&Tok::Comma)
                        && matches!(
                            self.tokens.get(self.pos + 1).map(|t| &t.tok),
                            Some(Tok::Label(_))
                        )
                        && matches!(
                            self.tokens.get(self.pos + 2).map(|t| &t.tok),
                            Some(Tok::Arrow)
                        )
                    {
                        self.bump();
                        continue;
                    }
                    break;
                }
                Ok(Ast::Translate(renames))
            }
            Some(Tok::LParen) => {
                self.bump();
                let g = self.guard()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(g)
            }
            _ => Err(self.err("expected MORPH, MUTATE, TRANSLATE, COMPOSE, or a CAST")),
        }
    }

    /// Can this token start a pattern item?
    fn is_item_start(tok: Option<&Tok>) -> bool {
        matches!(
            tok,
            Some(
                Tok::Label(_)
                    | Tok::LParen
                    | Tok::Bang
                    | Tok::Drop
                    | Tok::Restrict
                    | Tok::New
                    | Tok::Clone
                    | Tok::Children
                    | Tok::Descendants
            )
        )
    }

    // pattern := item (','? item)*
    fn pattern(&mut self) -> MorphResult<Pattern> {
        let mut items = Vec::new();
        while Self::is_item_start(self.peek()) {
            items.push(self.item()?);
            // An optional comma separates siblings — but only when an
            // item follows; otherwise it belongs to COMPOSE.
            if self.peek() == Some(&Tok::Comma)
                && Self::is_item_start(self.tokens.get(self.pos + 1).map(|t| &t.tok))
            {
                self.bump();
            }
        }
        if items.is_empty() {
            return Err(self.err("expected a shape pattern"));
        }
        Ok(Pattern { items })
    }

    // item := '!'? head ('[' inner ']')?
    fn item(&mut self) -> MorphResult<Item> {
        let pinned = self.eat(&Tok::Bang);
        let mut item = self.head()?;
        item.pinned = item.pinned || pinned;
        if self.eat(&Tok::LBracket) {
            let (children, inc_c, inc_d) = self.inner()?;
            self.expect(Tok::RBracket, "']'")?;
            // Merge with whatever the head itself carried (e.g. from a
            // parenthesized item).
            item.children.items.extend(children.items);
            item.include_children |= inc_c;
            item.include_descendants |= inc_d;
        }
        Ok(item)
    }

    fn head(&mut self) -> MorphResult<Item> {
        match self.peek().cloned() {
            Some(Tok::Label(l)) => {
                self.bump();
                Ok(Item::label(&l))
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.item()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Drop) => {
                self.bump();
                let shape = Pattern::single(self.item()?);
                Ok(Item {
                    head: Head::Drop(shape),
                    children: Pattern::default(),
                    include_children: false,
                    include_descendants: false,
                    pinned: false,
                })
            }
            Some(Tok::Restrict) => {
                self.bump();
                let shape = Pattern::single(self.item()?);
                Ok(Item {
                    head: Head::Restrict(shape),
                    children: Pattern::default(),
                    include_children: false,
                    include_descendants: false,
                    pinned: false,
                })
            }
            Some(Tok::New) => {
                self.bump();
                let label = self.label("label after NEW")?;
                Ok(Item {
                    head: Head::New(label),
                    children: Pattern::default(),
                    include_children: false,
                    include_descendants: false,
                    pinned: false,
                })
            }
            Some(Tok::Clone) => {
                self.bump();
                let shape = Pattern::single(self.item()?);
                Ok(Item {
                    head: Head::Clone(shape),
                    children: Pattern::default(),
                    include_children: false,
                    include_descendants: false,
                    pinned: false,
                })
            }
            Some(Tok::Children) => {
                self.bump();
                let mut inner = self.item()?;
                inner.include_children = true;
                Ok(inner)
            }
            Some(Tok::Descendants) => {
                self.bump();
                let mut inner = self.item()?;
                inner.include_descendants = true;
                Ok(inner)
            }
            _ => Err(self.err("expected a label or shape construct")),
        }
    }

    // inner := ('*' | '**' | item)* — the contents of brackets.
    fn inner(&mut self) -> MorphResult<(Pattern, bool, bool)> {
        let mut items = Vec::new();
        let mut inc_c = false;
        let mut inc_d = false;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    inc_c = true;
                }
                Some(Tok::StarStar) => {
                    self.bump();
                    inc_d = true;
                }
                Some(
                    Tok::Label(_)
                    | Tok::LParen
                    | Tok::Bang
                    | Tok::Drop
                    | Tok::Restrict
                    | Tok::New
                    | Tok::Clone
                    | Tok::Children
                    | Tok::Descendants,
                ) => {
                    items.push(self.item()?);
                }
                Some(Tok::Comma) => {
                    self.bump();
                }
                _ => break,
            }
        }
        Ok((Pattern { items }, inc_c, inc_d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_guard() {
        let ast = parse("MORPH author [ name book [ title ] ]").unwrap();
        match &ast {
            Ast::Morph(p) => {
                assert_eq!(p.items.len(), 1);
                let author = &p.items[0];
                assert_eq!(author.head, Head::Label("author".into()));
                assert_eq!(author.children.items.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ast.to_string(), "MORPH author [ name book [ title ] ]");
    }

    #[test]
    fn bang_guard_from_section_one() {
        let ast = parse("MORPH author [ !title name publisher [ name ] ]").unwrap();
        match &ast {
            Ast::Morph(p) => {
                let title = &p.items[0].children.items[0];
                assert!(title.pinned);
                assert_eq!(title.head, Head::Label("title".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_markers() {
        let ast = parse("MORPH data [author [* book [** publisher [*]]]]").unwrap();
        match &ast {
            Ast::Morph(p) => {
                let data = &p.items[0];
                let author = &data.children.items[0];
                assert!(author.include_children);
                let book = &author.children.items[0];
                assert!(book.include_descendants);
                let publisher = &book.children.items[0];
                assert!(publisher.include_children);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn children_descendants_keywords() {
        let a = parse("MORPH CHILDREN author").unwrap();
        match &a {
            Ast::Morph(p) => assert!(p.items[0].include_children),
            other => panic!("{other:?}"),
        }
        let b = parse("MORPH DESCENDANTS book").unwrap();
        match &b {
            Ast::Morph(p) => assert!(p.items[0].include_descendants),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mutate_with_drop() {
        let ast = parse("MORPH author [name] | MUTATE (DROP name)").unwrap();
        match &ast {
            Ast::Compose(a, b) => {
                assert!(matches!(**a, Ast::Morph(_)));
                match &**b {
                    Ast::Mutate(p) => {
                        assert!(matches!(p.items[0].head, Head::Drop(_)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn translate_single_and_multi() {
        let ast = parse("TRANSLATE author -> writer").unwrap();
        assert_eq!(
            ast,
            Ast::Translate(vec![("author".into(), "writer".into())])
        );
        let ast = parse("TRANSLATE a -> b, c -> d").unwrap();
        assert_eq!(
            ast,
            Ast::Translate(vec![("a".into(), "b".into()), ("c".into(), "d".into())])
        );
    }

    #[test]
    fn compose_keyword_form() {
        let ast = parse("COMPOSE MORPH a, MUTATE b").unwrap();
        assert!(matches!(ast, Ast::Compose(_, _)));
    }

    #[test]
    fn cast_wrappers_nest() {
        let ast = parse("CAST-WIDENING (TYPE-FILL MUTATE author [ title ])").unwrap();
        match ast {
            Ast::Cast(CastMode::Widening, inner) => match *inner {
                Ast::TypeFill(inner2) => assert!(matches!(*inner2, Ast::Mutate(_))),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_without_parens() {
        let ast = parse("CAST MORPH author").unwrap();
        assert!(matches!(ast, Ast::Cast(CastMode::Weak, _)));
        let ast = parse("CAST-NARROWING MORPH author [name]").unwrap();
        assert!(matches!(ast, Ast::Cast(CastMode::Narrowing, _)));
    }

    #[test]
    fn restrict_as_head_with_children() {
        let ast = parse("MORPH (RESTRICT name [ author ]) [ title ]").unwrap();
        match &ast {
            Ast::Morph(p) => {
                let item = &p.items[0];
                match &item.head {
                    Head::Restrict(shape) => {
                        assert_eq!(shape.items[0].head, Head::Label("name".into()));
                        assert_eq!(
                            shape.items[0].children.items[0].head,
                            Head::Label("author".into())
                        );
                    }
                    other => panic!("{other:?}"),
                }
                assert_eq!(item.children.items[0].head, Head::Label("title".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn new_and_clone() {
        let ast = parse("MUTATE (NEW scribe) [ author ]").unwrap();
        match &ast {
            Ast::Mutate(p) => {
                assert_eq!(p.items[0].head, Head::New("scribe".into()));
                assert_eq!(
                    p.items[0].children.items[0].head,
                    Head::Label("author".into())
                );
            }
            other => panic!("{other:?}"),
        }
        let ast = parse("MUTATE author [ CLONE title ]").unwrap();
        match &ast {
            Ast::Mutate(p) => {
                assert!(matches!(p.items[0].children.items[0].head, Head::Clone(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_insensitive_program() {
        assert_eq!(
            parse("morph Author [ Name ]").unwrap(),
            parse("MORPH Author [ Name ]").unwrap()
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for src in [
            "MORPH author [ name book [ title ] ]",
            "MUTATE book [ publisher [ name ] ]",
            "MORPH author [ name ] | MUTATE (DROP name)",
            "TRANSLATE author -> writer",
            "CAST-WIDENING (TYPE-FILL MUTATE author [ title ])",
            "MORPH data [ author [ * book [ ** publisher [ * ] ] ] ]",
        ] {
            let once = parse(src).unwrap();
            let twice = parse(&once.to_string()).unwrap();
            assert_eq!(once, twice, "{src}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("MORPH").unwrap_err();
        assert!(matches!(err, MorphError::Parse { .. }));
        let err = parse("MORPH author ]").unwrap_err();
        match err {
            MorphError::Parse { offset, .. } => assert_eq!(offset, 13),
            other => panic!("{other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("TRANSLATE a b").is_err());
        assert!(parse("MORPH a [ b").is_err());
    }

    #[test]
    fn pipe_chain_right_associates() {
        let ast = parse("MORPH a | MUTATE b | TRANSLATE x -> y").unwrap();
        match ast {
            Ast::Compose(first, rest) => {
                assert!(matches!(*first, Ast::Morph(_)));
                assert!(matches!(*rest, Ast::Compose(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }
}

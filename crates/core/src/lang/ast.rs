//! Abstract syntax of XMorph 2.0 guards.

use std::fmt;

/// A complete guard program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// `MORPH shape` — the output uses *only* the types in the shape.
    Morph(Pattern),
    /// `MUTATE shape` — rearrange the entire source shape; unmentioned
    /// types keep their relative positions.
    Mutate(Pattern),
    /// `TRANSLATE a -> b, c -> d` — rename types.
    Translate(Vec<(String, String)>),
    /// `g1 | g2` (or `COMPOSE g1, g2`) — pipe the first guard's shape
    /// into the second.
    Compose(Box<Ast>, Box<Ast>),
    /// `CAST g` / `CAST-NARROWING g` / `CAST-WIDENING g` — loosen the
    /// typing discipline for the wrapped guard.
    Cast(CastMode, Box<Ast>),
    /// `TYPE-FILL g` — labels matching no source type become NEW types
    /// instead of raising a type mismatch.
    TypeFill(Box<Ast>),
}

/// Which guard typings a `CAST` admits (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastMode {
    /// `CAST` — allow weakly-typed guards (anything but a mismatch).
    Weak,
    /// `CAST-NARROWING` — additionally allow narrowing guards.
    Narrowing,
    /// `CAST-WIDENING` — additionally allow widening guards.
    Widening,
}

/// A shape pattern: a sequence of sibling items.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pattern {
    /// Sibling items, in source order.
    pub items: Vec<Item>,
}

impl Pattern {
    /// A pattern with a single item.
    pub fn single(item: Item) -> Pattern {
        Pattern { items: vec![item] }
    }

    /// True when no items (an empty `[ ]`).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One pattern item: a head plus optional child pattern and
/// children/descendants markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// What the item selects or constructs.
    pub head: Head,
    /// The bracketed child pattern (empty when absent).
    pub children: Pattern,
    /// `[*]` marker or `CHILDREN` keyword: include the source children.
    pub include_children: bool,
    /// `[**]` marker or `DESCENDANTS` keyword: include the source
    /// subtree.
    pub include_descendants: bool,
    /// `!label` prefix. Parsed for §I's example guard; semantically a
    /// plain label (the paper gives `!` no distinct semantics).
    pub pinned: bool,
}

impl Item {
    /// A bare-label item.
    pub fn label(name: &str) -> Item {
        Item {
            head: Head::Label(name.to_string()),
            children: Pattern::default(),
            include_children: false,
            include_descendants: false,
            pinned: false,
        }
    }
}

/// The head of a pattern item.
///
/// Note on arity: the surface grammar gives `DROP`, `RESTRICT`, and
/// `CLONE` a *single* item operand (every paper example is single), so
/// the parser always builds singleton patterns here; the `Pattern` type
/// is kept for programmatic construction, but multi-item operand
/// patterns have no surface syntax and will not `Display`-round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Head {
    /// A label selecting source types by name (possibly dotted).
    Label(String),
    /// `DROP shape` — remove the matched types (inside `MUTATE`).
    Drop(Pattern),
    /// `RESTRICT shape` — keep only the shape's root types, filtered to
    /// instances that have closest matches for the rest of the shape.
    Restrict(Pattern),
    /// `NEW label` — introduce a brand-new type.
    New(String),
    /// `CLONE shape` — duplicate the matched types as distinct types.
    Clone(Pattern),
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Morph(p) => write!(f, "MORPH {p}"),
            Ast::Mutate(p) => write!(f, "MUTATE {p}"),
            Ast::Translate(renames) => {
                write!(f, "TRANSLATE ")?;
                for (i, (a, b)) in renames.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} -> {b}")?;
                }
                Ok(())
            }
            // `|` right-associates and CAST binds loosest, so a compose
            // whose LEFT operand is itself a compose/cast/typefill needs
            // the keyword form to round-trip.
            Ast::Compose(a, b) => match **a {
                Ast::Compose(..) | Ast::Cast(..) | Ast::TypeFill(..) => {
                    write!(f, "COMPOSE {a}, {b}")
                }
                _ => write!(f, "{a} | {b}"),
            },
            Ast::Cast(CastMode::Weak, g) => write!(f, "CAST ({g})"),
            Ast::Cast(CastMode::Narrowing, g) => write!(f, "CAST-NARROWING ({g})"),
            Ast::Cast(CastMode::Widening, g) => write!(f, "CAST-WIDENING ({g})"),
            Ast::TypeFill(g) => write!(f, "TYPE-FILL ({g})"),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pinned {
            write!(f, "!")?;
        }
        match &self.head {
            Head::Label(l) => write!(f, "{l}")?,
            Head::Drop(p) => write!(f, "(DROP {p})")?,
            Head::Restrict(p) => write!(f, "(RESTRICT {p})")?,
            Head::New(l) => write!(f, "(NEW {l})")?,
            Head::Clone(p) => write!(f, "(CLONE {p})")?,
        }
        let mut inner: Vec<String> = Vec::new();
        if self.include_children {
            inner.push("*".to_string());
        }
        if self.include_descendants {
            inner.push("**".to_string());
        }
        for item in &self.children.items {
            inner.push(item.to_string());
        }
        if !inner.is_empty() {
            write!(f, " [ {} ]", inner.join(" "))?;
        }
        Ok(())
    }
}

//! Document storage in document order.

use crate::query::{self, QueryError};
use xmorph_pagestore::{Store, StoreError, StoreResult};

/// Chunk size for document segments: most of a page, so a sequential
/// scan of chunks is a sequential scan of pages.
const CHUNK: usize = 3500;

/// A collection of XML documents stored in document order, queryable
/// with a FLWOR subset of XQuery.
#[derive(Debug, Clone)]
pub struct XqliteDb {
    store: Store,
}

fn chunk_key(name: &str, index: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(name.len() + 5);
    k.extend_from_slice(name.as_bytes());
    k.push(0); // separator: names cannot contain NUL
    k.extend_from_slice(&index.to_be_bytes());
    k
}

impl XqliteDb {
    /// Wrap a pagestore.
    pub fn new(store: Store) -> XqliteDb {
        XqliteDb { store }
    }

    /// An ephemeral in-memory database.
    pub fn in_memory() -> XqliteDb {
        XqliteDb::new(Store::in_memory())
    }

    /// The underlying store (for I/O statistics).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Store a document under `name`, in document order, split into
    /// page-sized chunks. Replaces any previous document of that name.
    pub fn store_document(&self, name: &str, xml: &str) -> StoreResult<()> {
        assert!(!name.contains('\0'), "document names cannot contain NUL");
        let tree = self.store.open_tree("documents")?;
        let bytes = xml.as_bytes();
        let mut index = 0u32;
        let mut off = 0usize;
        while off < bytes.len() {
            // Split on a UTF-8 boundary at or below CHUNK.
            let mut end = (off + CHUNK).min(bytes.len());
            while end < bytes.len() && (bytes[end] & 0b1100_0000) == 0b1000_0000 {
                end -= 1;
            }
            tree.insert(&chunk_key(name, index), &bytes[off..end])?;
            index += 1;
            off = end;
        }
        // Tombstone any stale higher chunks from a previous version.
        loop {
            if !tree.delete(&chunk_key(name, index))? {
                break;
            }
            index += 1;
        }
        Ok(())
    }

    /// Read a document back as a string — the sequential "dump" path the
    /// paper's Fig. 10 baseline measures.
    pub fn load_document(&self, name: &str) -> StoreResult<Option<String>> {
        let tree = self.store.open_tree("documents")?;
        let mut prefix = name.as_bytes().to_vec();
        prefix.push(0);
        let mut out: Vec<u8> = Vec::new();
        let mut found = false;
        for (_, chunk) in tree.scan_prefix(&prefix) {
            found = true;
            out.extend_from_slice(&chunk);
        }
        if !found {
            return Ok(None);
        }
        // Chunks are split on UTF-8 boundaries at write time, but a
        // torn shutdown can hand back corrupt chunk bytes — report,
        // don't panic.
        String::from_utf8(out)
            .map(Some)
            .map_err(|_| StoreError::Corrupt("document chunks are not valid UTF-8"))
    }

    /// List stored document names.
    pub fn document_names(&self) -> StoreResult<Vec<String>> {
        let tree = self.store.open_tree("documents")?;
        let mut names = Vec::new();
        for (key, _) in tree.range(..) {
            if let Some(pos) = key.iter().position(|&b| b == 0) {
                let name = String::from_utf8_lossy(&key[..pos]).to_string();
                if names.last() != Some(&name) {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    /// Evaluate an XQuery (FLWOR subset) against the collection. The
    /// `doc("name")` function loads documents from this database.
    pub fn query(&self, query_text: &str) -> Result<String, QueryError> {
        query::evaluate(self, query_text)
    }

    /// The paper's baseline query: dump a whole document wrapped in a
    /// `<data>` element — eXist's best case.
    pub fn dump_wrapped(&self, name: &str, root: &str) -> Result<String, QueryError> {
        self.query(&format!(
            "for $b in doc(\"{name}\")/{root} return <data>{{$b}}</data>"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_load_round_trip() {
        let db = XqliteDb::in_memory();
        let xml = "<a><b>hello</b></a>";
        db.store_document("doc.xml", xml).unwrap();
        assert_eq!(db.load_document("doc.xml").unwrap().as_deref(), Some(xml));
        assert_eq!(db.load_document("missing.xml").unwrap(), None);
    }

    #[test]
    fn large_document_chunks() {
        let db = XqliteDb::in_memory();
        let mut xml = String::from("<root>");
        for i in 0..2000 {
            xml.push_str(&format!("<item>{i} — value</item>"));
        }
        xml.push_str("</root>");
        db.store_document("big.xml", &xml).unwrap();
        assert_eq!(
            db.load_document("big.xml").unwrap().as_deref(),
            Some(xml.as_str())
        );
    }

    #[test]
    fn replace_shrinks_cleanly() {
        let db = XqliteDb::in_memory();
        let big = format!("<r>{}</r>", "x".repeat(20_000));
        db.store_document("d", &big).unwrap();
        let small = "<r>tiny</r>";
        db.store_document("d", small).unwrap();
        assert_eq!(db.load_document("d").unwrap().as_deref(), Some(small));
    }

    #[test]
    fn multibyte_chunk_boundaries() {
        let db = XqliteDb::in_memory();
        let xml = format!("<r>{}</r>", "é☃".repeat(5000));
        db.store_document("uni", &xml).unwrap();
        assert_eq!(
            db.load_document("uni").unwrap().as_deref(),
            Some(xml.as_str())
        );
    }

    #[test]
    fn document_names_listed() {
        let db = XqliteDb::in_memory();
        db.store_document("a.xml", "<a/>").unwrap();
        db.store_document("b.xml", "<b/>").unwrap();
        assert_eq!(db.document_names().unwrap(), vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn dump_wrapped_matches_paper_query() {
        let db = XqliteDb::in_memory();
        db.store_document("x.xml", "<site><a>1</a></site>").unwrap();
        let out = db.dump_wrapped("x.xml", "site").unwrap();
        assert_eq!(out, "<data><site><a>1</a></site></data>");
    }
}

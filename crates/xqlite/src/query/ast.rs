//! Query AST.

/// Comparison operators (general comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `/name` — child elements named `name` (`*` matches all).
    Child(String),
    /// `//name` — descendant elements named `name` (`*` matches all).
    Descendant(String),
    /// `/@name` — attribute value.
    Attribute(String),
    /// `[expr]` — positional (number) or boolean predicate.
    Predicate(Box<Expr>),
}

/// A piece of direct element constructor content.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Literal text.
    Text(String),
    /// `{ expr }` interpolation.
    Embed(Expr),
    /// A nested constructor.
    Element(Box<Constructor>),
}

/// A direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct Constructor {
    /// Element name.
    pub name: String,
    /// Static attributes (values may embed `{expr}`? — kept literal).
    pub attrs: Vec<(String, String)>,
    /// Element content.
    pub content: Vec<Content>,
}

/// A `for`/`let` binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// `for $var in expr` — iterate item by item.
    For(String, Expr),
    /// `let $var := expr` — bind the whole sequence.
    Let(String, Expr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// FLWOR.
    Flwor {
        /// `for`/`let` clauses in order.
        bindings: Vec<Binding>,
        /// Optional `where`.
        condition: Option<Box<Expr>>,
        /// Optional `order by` key with direction (true = descending).
        order_by: Option<(Box<Expr>, bool)>,
        /// The `return` body.
        body: Box<Expr>,
    },
    /// `a or b` / `a and b`.
    Logic {
        /// True for `or`, false for `and`.
        is_or: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// General comparison.
    Compare {
        /// Operator.
        op: Cmp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A primary expression followed by path steps.
    Path {
        /// The origin value.
        origin: Box<Expr>,
        /// Steps applied left to right.
        steps: Vec<Step>,
    },
    /// `doc("name")`.
    Doc(String),
    /// `$var`.
    Var(String),
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Direct element constructor.
    Element(Constructor),
    /// `count(expr)`.
    Count(Box<Expr>),
    /// `string(expr)`.
    StringFn(Box<Expr>),
    /// `distinct-values(expr)`.
    DistinctValues(Box<Expr>),
    /// `concat(e1, e2, ...)`.
    Concat(Vec<Expr>),
    /// Empty sequence `()`.
    Empty,
}

//! Query evaluation over DOM instances of stored documents.

use crate::db::XqliteDb;
use crate::query::ast::{Binding, Cmp, Constructor, Content, Expr, Step};
use crate::query::QueryError;
use std::collections::HashMap;
use std::rc::Rc;
use xmorph_xml::dom::{Document, NodeId};
use xmorph_xml::escape::escape_text;

/// One item of a value sequence.
#[derive(Debug, Clone)]
enum Item {
    /// A node within a loaded document.
    Node(Rc<Document>, NodeId),
    /// An atomic string.
    Str(String),
    /// An atomic number.
    Num(f64),
}

type Seq = Vec<Item>;

struct Ctx<'a> {
    db: &'a XqliteDb,
    docs: HashMap<String, Rc<Document>>,
    vars: Vec<HashMap<String, Seq>>,
}

impl<'a> Ctx<'a> {
    fn lookup(&self, var: &str) -> Result<Seq, QueryError> {
        for frame in self.vars.iter().rev() {
            if let Some(v) = frame.get(var) {
                return Ok(v.clone());
            }
        }
        Err(QueryError::UnboundVariable(var.to_string()))
    }

    fn doc(&mut self, name: &str) -> Result<Rc<Document>, QueryError> {
        if let Some(d) = self.docs.get(name) {
            return Ok(Rc::clone(d));
        }
        let text = self
            .db
            .load_document(name)
            .map_err(|e| QueryError::Store(e.to_string()))?
            .ok_or_else(|| QueryError::NoSuchDocument(name.to_string()))?;
        let doc = Rc::new(
            Document::parse_str(&text).map_err(|e| QueryError::BadStoredXml(e.to_string()))?,
        );
        self.docs.insert(name.to_string(), Rc::clone(&doc));
        Ok(doc)
    }
}

/// Evaluate a parsed query and serialize the result sequence.
pub fn run(db: &XqliteDb, expr: &Expr) -> Result<String, QueryError> {
    let mut ctx = Ctx {
        db,
        docs: HashMap::new(),
        vars: vec![HashMap::new()],
    };
    let seq = eval(expr, &mut ctx)?;
    Ok(serialize_seq(&seq))
}

fn serialize_seq(seq: &Seq) -> String {
    let mut out = String::new();
    let mut last_was_atomic = false;
    for item in seq {
        match item {
            Item::Node(doc, id) => {
                out.push_str(&doc.serialize_node(*id));
                last_was_atomic = false;
            }
            Item::Str(s) => {
                if last_was_atomic {
                    out.push(' ');
                }
                out.push_str(&escape_text(s));
                last_was_atomic = true;
            }
            Item::Num(n) => {
                if last_was_atomic {
                    out.push(' ');
                }
                out.push_str(&format_num(*n));
                last_was_atomic = true;
            }
        }
    }
    out
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn string_value(item: &Item) -> String {
    match item {
        Item::Node(doc, id) => doc.deep_text(*id),
        Item::Str(s) => s.clone(),
        Item::Num(n) => format_num(*n),
    }
}

/// Effective boolean value.
fn ebv(seq: &Seq) -> bool {
    match seq.first() {
        None => false,
        Some(Item::Node(..)) => true,
        Some(Item::Str(s)) => !(seq.len() == 1 && s.is_empty()),
        Some(Item::Num(n)) => !(seq.len() == 1 && *n == 0.0),
    }
}

fn eval(expr: &Expr, ctx: &mut Ctx<'_>) -> Result<Seq, QueryError> {
    match expr {
        Expr::Flwor {
            bindings,
            condition,
            order_by,
            body,
        } => {
            let mut tuples: Vec<(Option<String>, Seq)> = Vec::new();
            ctx.vars.push(HashMap::new());
            let result = flwor_rec(
                bindings,
                condition.as_deref(),
                order_by.as_ref().map(|(k, _)| k.as_ref()),
                body,
                ctx,
                &mut tuples,
            );
            ctx.vars.pop();
            result?;
            if let Some((_, descending)) = order_by {
                tuples.sort_by(|(a, _), (b, _)| order_cmp(a.as_deref(), b.as_deref()));
                if *descending {
                    tuples.reverse();
                }
            }
            Ok(tuples.into_iter().flat_map(|(_, seq)| seq).collect())
        }
        Expr::Logic { is_or, lhs, rhs } => {
            let l = ebv(&eval(lhs, ctx)?);
            let value = if *is_or {
                l || ebv(&eval(rhs, ctx)?)
            } else {
                l && ebv(&eval(rhs, ctx)?)
            };
            Ok(vec![Item::Num(if value { 1.0 } else { 0.0 })])
        }
        Expr::Compare { op, lhs, rhs } => {
            let l = eval(lhs, ctx)?;
            let r = eval(rhs, ctx)?;
            // General comparison: existential over both sequences.
            let hit = l.iter().any(|a| r.iter().any(|b| compare(*op, a, b)));
            Ok(vec![Item::Num(if hit { 1.0 } else { 0.0 })])
        }
        Expr::Path { origin, steps } => {
            let mut seq = eval(origin, ctx)?;
            for step in steps {
                seq = apply_step(step, seq, ctx)?;
            }
            Ok(seq)
        }
        Expr::Doc(name) => {
            let doc = ctx.doc(name)?;
            let root = doc
                .root_element()
                .ok_or_else(|| QueryError::BadStoredXml("empty document".into()))?;
            // doc() returns the document node; a child step selects the
            // root element. Model the document node as a virtual parent
            // by returning the root and letting Child match its name.
            Ok(vec![Item::Node(doc, root)])
        }
        Expr::Var(v) => ctx.lookup(v),
        Expr::Str(s) => Ok(vec![Item::Str(s.clone())]),
        Expr::Num(n) => Ok(vec![Item::Num(*n)]),
        Expr::Element(c) => {
            let xml = construct(c, ctx)?;
            // Re-parse so constructed elements behave like nodes for
            // downstream steps.
            let doc = Rc::new(
                Document::parse_str(&xml).map_err(|e| QueryError::BadStoredXml(e.to_string()))?,
            );
            let root = doc.root_element().ok_or_else(|| {
                QueryError::BadStoredXml("constructed element has no root".into())
            })?;
            Ok(vec![Item::Node(doc, root)])
        }
        Expr::Count(e) => {
            let n = eval(e, ctx)?.len();
            Ok(vec![Item::Num(n as f64)])
        }
        Expr::StringFn(e) => {
            let seq = eval(e, ctx)?;
            let s = seq.first().map(string_value).unwrap_or_default();
            Ok(vec![Item::Str(s)])
        }
        Expr::DistinctValues(e) => {
            let seq = eval(e, ctx)?;
            let mut seen = std::collections::BTreeSet::new();
            let mut out = Vec::new();
            for item in &seq {
                let v = string_value(item);
                if seen.insert(v.clone()) {
                    out.push(Item::Str(v));
                }
            }
            Ok(out)
        }
        Expr::Concat(parts) => {
            let mut s = String::new();
            for part in parts {
                let seq = eval(part, ctx)?;
                if let Some(first) = seq.first() {
                    s.push_str(&string_value(first));
                }
            }
            Ok(vec![Item::Str(s)])
        }
        Expr::Empty => Ok(Vec::new()),
    }
}

/// Numeric-aware ordering for `order by` keys; empty keys sort first.
fn order_cmp(a: Option<&str>, b: Option<&str>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => {
            if let (Ok(nx), Ok(ny)) = (x.trim().parse::<f64>(), y.trim().parse::<f64>()) {
                nx.partial_cmp(&ny).unwrap_or(std::cmp::Ordering::Equal)
            } else {
                x.cmp(y)
            }
        }
    }
}

/// Recursive FLWOR tuple stream: one level per binding. Each produced
/// tuple carries its `order by` key (if any) so the caller can sort.
fn flwor_rec(
    bindings: &[Binding],
    condition: Option<&Expr>,
    order_key: Option<&Expr>,
    body: &Expr,
    ctx: &mut Ctx<'_>,
    out: &mut Vec<(Option<String>, Seq)>,
) -> Result<(), QueryError> {
    match bindings.split_first() {
        None => {
            if let Some(cond) = condition {
                if !ebv(&eval(cond, ctx)?) {
                    return Ok(());
                }
            }
            let key = match order_key {
                Some(k) => Some(eval(k, ctx)?.first().map(string_value).unwrap_or_default()),
                None => None,
            };
            out.push((key, eval(body, ctx)?));
            Ok(())
        }
        Some((Binding::For(var, e), rest)) => {
            let seq = eval(e, ctx)?;
            for item in seq {
                ctx.vars
                    .last_mut()
                    .expect("frame")
                    .insert(var.clone(), vec![item]);
                flwor_rec(rest, condition, order_key, body, ctx, out)?;
            }
            ctx.vars.last_mut().expect("frame").remove(var);
            Ok(())
        }
        Some((Binding::Let(var, e), rest)) => {
            let seq = eval(e, ctx)?;
            ctx.vars.last_mut().expect("frame").insert(var.clone(), seq);
            flwor_rec(rest, condition, order_key, body, ctx, out)?;
            ctx.vars.last_mut().expect("frame").remove(var);
            Ok(())
        }
    }
}

fn apply_step(step: &Step, seq: Seq, ctx: &mut Ctx<'_>) -> Result<Seq, QueryError> {
    match step {
        Step::Child(name) => {
            let mut out = Vec::new();
            for item in &seq {
                match item {
                    Item::Node(doc, id) => {
                        // Special case: the document root — a child step
                        // naming the root element selects it.
                        if doc.parent(*id).is_none() && (name == "*" || doc.name(*id) == name) {
                            let children_match = doc
                                .children(*id)
                                .any(|c| name == "*" || doc.name(c) == name);
                            if !children_match {
                                out.push(Item::Node(Rc::clone(doc), *id));
                                continue;
                            }
                        }
                        for c in doc.children(*id) {
                            if name == "*" || doc.name(c) == name {
                                out.push(Item::Node(Rc::clone(doc), c));
                            }
                        }
                    }
                    _ => return Err(QueryError::NotANode("child step")),
                }
            }
            Ok(out)
        }
        Step::Descendant(name) => {
            let mut out = Vec::new();
            for item in &seq {
                match item {
                    Item::Node(doc, id) => {
                        for d in doc.descendant_elements(*id) {
                            if name == "*" || doc.name(d) == name {
                                out.push(Item::Node(Rc::clone(doc), d));
                            }
                        }
                    }
                    _ => return Err(QueryError::NotANode("descendant step")),
                }
            }
            Ok(out)
        }
        Step::Attribute(name) => {
            let mut out = Vec::new();
            for item in &seq {
                match item {
                    Item::Node(doc, id) => {
                        if let Some(v) = doc.attr(*id, name) {
                            out.push(Item::Str(v.to_string()));
                        }
                    }
                    _ => return Err(QueryError::NotANode("attribute step")),
                }
            }
            Ok(out)
        }
        Step::Predicate(e) => {
            // Numeric literal predicate = positional.
            if let Expr::Num(n) = **e {
                let idx = n as usize;
                return Ok(seq
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i + 1 == idx)
                    .map(|(_, item)| item)
                    .collect());
            }
            let mut out = Vec::new();
            for item in seq {
                // Bind the context item as $. — approximated by
                // evaluating the predicate with the item as implicit
                // origin: predicates in this subset start from relative
                // paths on the item, which we encode via a reserved var.
                ctx.vars
                    .last_mut()
                    .expect("frame")
                    .insert(".".to_string(), vec![item.clone()]);
                let keep = ebv(&eval(e, ctx)?);
                ctx.vars.last_mut().expect("frame").remove(".");
                if keep {
                    out.push(item);
                }
            }
            Ok(out)
        }
    }
}

fn compare(op: Cmp, a: &Item, b: &Item) -> bool {
    // Numeric comparison when both sides coerce to numbers.
    let (sa, sb) = (string_value(a), string_value(b));
    if let (Ok(na), Ok(nb)) = (sa.trim().parse::<f64>(), sb.trim().parse::<f64>()) {
        return match op {
            Cmp::Eq => na == nb,
            Cmp::Ne => na != nb,
            Cmp::Lt => na < nb,
            Cmp::Le => na <= nb,
            Cmp::Gt => na > nb,
            Cmp::Ge => na >= nb,
        };
    }
    match op {
        Cmp::Eq => sa == sb,
        Cmp::Ne => sa != sb,
        Cmp::Lt => sa < sb,
        Cmp::Le => sa <= sb,
        Cmp::Gt => sa > sb,
        Cmp::Ge => sa >= sb,
    }
}

fn construct(c: &Constructor, ctx: &mut Ctx<'_>) -> Result<String, QueryError> {
    let mut out = String::new();
    out.push('<');
    out.push_str(&c.name);
    for (k, v) in &c.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&xmorph_xml::escape::escape_attr(v));
        out.push('"');
    }
    if c.content.is_empty() {
        out.push_str("/>");
        return Ok(out);
    }
    out.push('>');
    for content in &c.content {
        match content {
            Content::Text(t) => out.push_str(&escape_text(t)),
            Content::Embed(e) => {
                let seq = eval(e, ctx)?;
                out.push_str(&serialize_seq(&seq));
            }
            Content::Element(inner) => out.push_str(&construct(inner, ctx)?),
        }
    }
    out.push_str("</");
    out.push_str(&c.name);
    out.push('>');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(name: &str, xml: &str) -> XqliteDb {
        let db = XqliteDb::in_memory();
        db.store_document(name, xml).unwrap();
        db
    }

    const BOOKS: &str = "<data>\
        <book year=\"2001\"><title>X</title><author><name>Tim</name></author></book>\
        <book year=\"2005\"><title>Y</title><author><name>Ann</name></author></book>\
        </data>";

    #[test]
    fn dump_query() {
        let db = db_with("d", "<site><x>1</x></site>");
        let out = db
            .query(r#"for $b in doc("d")/site return <data>{$b}</data>"#)
            .unwrap();
        assert_eq!(out, "<data><site><x>1</x></site></data>");
    }

    #[test]
    fn child_and_descendant_steps() {
        let db = db_with("d", BOOKS);
        assert_eq!(
            db.query(r#"doc("d")/data/book/title"#).unwrap(),
            "<title>X</title><title>Y</title>"
        );
        assert_eq!(
            db.query(r#"doc("d")//name"#).unwrap(),
            "<name>Tim</name><name>Ann</name>"
        );
    }

    #[test]
    fn attribute_step() {
        let db = db_with("d", BOOKS);
        assert_eq!(
            db.query(r#"doc("d")/data/book/@year"#).unwrap(),
            "2001 2005"
        );
    }

    #[test]
    fn flwor_with_where() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(r#"for $b in doc("d")/data/book where $b/author/name = "Tim" return $b/title"#)
            .unwrap();
        assert_eq!(out, "<title>X</title>");
    }

    #[test]
    fn let_binding() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(r#"for $b in doc("d")/data/book let $t := $b/title return <r>{$t}</r>"#)
            .unwrap();
        assert_eq!(out, "<r><title>X</title></r><r><title>Y</title></r>");
    }

    #[test]
    fn positional_predicate() {
        let db = db_with("d", BOOKS);
        assert_eq!(
            db.query(r#"doc("d")/data/book[2]/title"#).unwrap(),
            "<title>Y</title>"
        );
    }

    #[test]
    fn boolean_predicate() {
        let db = db_with("d", BOOKS);
        // Predicate with an absolute comparison (context-free predicates
        // in this subset).
        let out = db
            .query(r#"for $b in doc("d")/data/book where $b/@year = "2005" return $b/title"#)
            .unwrap();
        assert_eq!(out, "<title>Y</title>");
    }

    #[test]
    fn count_function() {
        let db = db_with("d", BOOKS);
        assert_eq!(db.query(r#"count(doc("d")//book)"#).unwrap(), "2");
    }

    #[test]
    fn distinct_values() {
        let db = db_with("d", "<r><a>x</a><a>y</a><a>x</a></r>");
        assert_eq!(db.query(r#"distinct-values(doc("d")//a)"#).unwrap(), "x y");
    }

    #[test]
    fn string_and_concat() {
        let db = db_with("d", BOOKS);
        assert_eq!(
            db.query(r#"concat("title: ", string(doc("d")//title))"#)
                .unwrap(),
            "title: X"
        );
    }

    #[test]
    fn numeric_comparison() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(r#"for $b in doc("d")/data/book where $b/@year > 2003 return $b/title"#)
            .unwrap();
        assert_eq!(out, "<title>Y</title>");
    }

    #[test]
    fn nested_flwor() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(
                r#"for $b in doc("d")/data/book return <entry>{
                    for $n in $b/author/name return <who>{$n}</who>
                }</entry>"#,
            )
            .unwrap();
        assert_eq!(
            out,
            "<entry><who><name>Tim</name></who></entry><entry><who><name>Ann</name></who></entry>"
        );
    }

    #[test]
    fn constructed_elements_support_steps() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(r#"for $t in <w><v>7</v></w>/v return <got>{$t}</got>"#)
            .unwrap();
        assert_eq!(out, "<got><v>7</v></got>");
    }

    #[test]
    fn errors() {
        let db = db_with("d", BOOKS);
        assert!(matches!(
            db.query(r#"doc("missing")/a"#),
            Err(QueryError::NoSuchDocument(_))
        ));
        assert!(matches!(
            db.query(r#"$nope"#),
            Err(QueryError::UnboundVariable(_))
        ));
        assert!(matches!(
            db.query(r#""str"/a"#),
            Err(QueryError::NotANode(_))
        ));
    }

    #[test]
    fn malformed_queries_are_parse_errors() {
        let db = db_with("d", BOOKS);
        for q in [
            "for $b in",
            "doc(",
            r#"doc("d")/data/book["#,
            "let $x := return $x",
            "<unclosed>{1}",
        ] {
            assert!(
                matches!(db.query(q), Err(QueryError::Parse(_, _))),
                "query {q:?} should be a parse error, got {:?}",
                db.query(q)
            );
        }
    }

    #[test]
    fn malformed_stored_documents_are_query_errors() {
        let db = XqliteDb::in_memory();
        // store_document does not validate — a caller can persist text
        // that is not well-formed XML; doc() must report, not panic.
        db.store_document("bad", "<open><unclosed>").unwrap();
        assert!(matches!(
            db.query(r#"doc("bad")/a"#),
            Err(QueryError::BadStoredXml(_))
        ));
        db.store_document("junk", "not xml at all").unwrap();
        assert!(matches!(
            db.query(r#"doc("junk")/a"#),
            Err(QueryError::BadStoredXml(_))
        ));
    }

    #[test]
    fn corrupt_document_chunks_are_reported_not_panicked() {
        let db = db_with("d", BOOKS);
        // Simulate a torn shutdown: overwrite one chunk with bytes that
        // are not valid UTF-8, straight into the documents tree.
        let tree = db.store().open_tree("documents").unwrap();
        let mut key = b"d".to_vec();
        key.push(0);
        key.extend_from_slice(&0u32.to_be_bytes());
        tree.insert(&key, &[0xFF, 0xFE, 0x80]).unwrap();
        assert!(matches!(
            db.query(r#"doc("d")/data/book/title"#),
            Err(QueryError::Store(_))
        ));
        assert!(db.load_document("d").is_err());
    }

    #[test]
    fn logic_operators() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(
                r#"for $b in doc("d")/data/book where $b/@year = "2001" or $b/@year = "2005" return $b/@year"#,
            )
            .unwrap();
        assert_eq!(out, "2001 2005");
        let out = db
            .query(
                r#"for $b in doc("d")/data/book where $b/@year = "2001" and $b/title = "X" return $b/@year"#,
            )
            .unwrap();
        assert_eq!(out, "2001");
    }

    #[test]
    fn order_by_ascending_and_descending() {
        let db = db_with("d", BOOKS);
        let asc = db
            .query(r#"for $b in doc("d")/data/book order by $b/title return $b/@year"#)
            .unwrap();
        assert_eq!(asc, "2001 2005");
        let desc = db
            .query(r#"for $b in doc("d")/data/book order by $b/title descending return $b/@year"#)
            .unwrap();
        assert_eq!(desc, "2005 2001");
    }

    #[test]
    fn order_by_numeric_keys() {
        let db = db_with("d", "<r><v>10</v><v>9</v><v>100</v></r>");
        let out = db
            .query(r#"for $v in doc("d")/r/v order by $v return $v"#)
            .unwrap();
        // Numeric, not lexicographic: 9 < 10 < 100.
        assert_eq!(out, "<v>9</v><v>10</v><v>100</v>");
    }

    #[test]
    fn order_by_with_where() {
        let db = db_with("d", BOOKS);
        let out = db
            .query(
                r#"for $b in doc("d")/data/book where $b/@year > 2000 order by $b/@year descending return $b/title"#,
            )
            .unwrap();
        assert_eq!(out, "<title>Y</title><title>X</title>");
    }

    #[test]
    fn wildcard_step() {
        let db = db_with("d", "<r><a>1</a><b>2</b></r>");
        assert_eq!(db.query(r#"doc("d")/r/*"#).unwrap(), "<a>1</a><b>2</b>");
    }
}

//! A FLWOR subset of XQuery.
//!
//! Supported: `for $v in e (, $v2 in e2)*`, `let $v := e`, `where e`,
//! `return e`; path expressions with `/name`, `//name`, `/*`, `/@attr`,
//! and positional or boolean predicates `[e]`; `doc("name")`; direct
//! element constructors with `{expr}` interpolation; string/number
//! literals; general comparisons `= != < <= > >=`; `and`/`or`; and the
//! functions `count()`, `string()`, `distinct-values()`, `concat()`.
//!
//! This is deliberately the slice of XQuery the paper's experiments rely
//! on (the Fig. 10 dump and the Fig. 14 morph-equivalent queries), done
//! faithfully enough to serve as a baseline, not a full W3C engine.

pub mod ast;
pub mod eval;
pub mod parser;
pub mod paths;

use crate::db::XqliteDb;
use std::fmt;

/// An error raised while parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Syntax error with byte offset.
    Parse(String, usize),
    /// Reference to an unbound variable.
    UnboundVariable(String),
    /// `doc()` named an absent document.
    NoSuchDocument(String),
    /// A path step applied to a non-node item.
    NotANode(&'static str),
    /// Underlying storage failure.
    Store(String),
    /// XML in the store failed to parse.
    BadStoredXml(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m, off) => write!(f, "query syntax error at byte {off}: {m}"),
            QueryError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            QueryError::NoSuchDocument(d) => write!(f, "no such document: {d}"),
            QueryError::NotANode(what) => write!(f, "path step on a non-node value in {what}"),
            QueryError::Store(m) => write!(f, "storage error: {m}"),
            QueryError::BadStoredXml(m) => write!(f, "stored document is not well-formed: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Parse and evaluate a query against a database.
pub fn evaluate(db: &XqliteDb, text: &str) -> Result<String, QueryError> {
    let expr = parser::parse(text)?;
    eval::run(db, &expr)
}

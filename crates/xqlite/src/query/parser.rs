//! Hand-rolled recursive-descent parser over the raw character stream
//! (direct constructors make XQuery unfriendly to a separate lexer).

use crate::query::ast::{Binding, Cmp, Constructor, Content, Expr, Step};
use crate::query::QueryError;

/// Parse a query.
pub fn parse(src: &str) -> Result<Expr, QueryError> {
    let mut p = P {
        src: src.as_bytes(),
        text: src,
        pos: 0,
    };
    p.ws();
    let e = p.expr()?;
    p.ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> QueryError {
        QueryError::Parse(m.to_string(), self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Match a keyword (must not be followed by a name character).
    fn kw(&mut self, s: &str) -> bool {
        if self.text[self.pos..].starts_with(s) {
            let after = self.src.get(self.pos + s.len()).copied();
            if !matches!(after, Some(b) if is_name(b)) {
                self.pos += s.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, s: &str) -> Result<(), QueryError> {
        if self.lit(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn name(&mut self) -> Result<String, QueryError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if is_name(b)) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn string_literal(&mut self) -> Result<String, QueryError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek() != Some(quote) {
            if self.peek().is_none() {
                return Err(self.err("unterminated string literal"));
            }
            self.pos += 1;
        }
        let s = self.text[start..self.pos].to_string();
        self.pos += 1;
        Ok(s)
    }

    // expr := flwor | or-expr
    fn expr(&mut self) -> Result<Expr, QueryError> {
        self.ws();
        if self.looking_at_kw("for") || self.looking_at_kw("let") {
            return self.flwor();
        }
        self.or_expr()
    }

    fn looking_at_kw(&self, s: &str) -> bool {
        self.text[self.pos..].starts_with(s)
            && !matches!(self.src.get(self.pos + s.len()).copied(), Some(b) if is_name(b))
    }

    fn flwor(&mut self) -> Result<Expr, QueryError> {
        let mut bindings = Vec::new();
        loop {
            self.ws();
            if self.kw("for") {
                loop {
                    self.ws();
                    self.expect("$")?;
                    let var = self.name()?;
                    self.ws();
                    if !self.kw("in") {
                        return Err(self.err("expected 'in'"));
                    }
                    self.ws();
                    let e = self.or_expr()?;
                    bindings.push(Binding::For(var, e));
                    self.ws();
                    if !self.lit(",") {
                        break;
                    }
                }
            } else if self.kw("let") {
                self.ws();
                self.expect("$")?;
                let var = self.name()?;
                self.ws();
                self.expect(":=")?;
                self.ws();
                let e = self.or_expr()?;
                bindings.push(Binding::Let(var, e));
            } else {
                break;
            }
        }
        if bindings.is_empty() {
            return Err(self.err("expected for/let"));
        }
        self.ws();
        let condition = if self.kw("where") {
            self.ws();
            Some(Box::new(self.or_expr()?))
        } else {
            None
        };
        self.ws();
        let order_by = if self.kw("order") {
            self.ws();
            if !self.kw("by") {
                return Err(self.err("expected 'by' after 'order'"));
            }
            self.ws();
            let key = Box::new(self.or_expr()?);
            self.ws();
            let descending = if self.kw("descending") {
                true
            } else {
                let _ = self.kw("ascending");
                false
            };
            Some((key, descending))
        } else {
            None
        };
        self.ws();
        if !self.kw("return") {
            return Err(self.err("expected 'return'"));
        }
        self.ws();
        let body = Box::new(self.expr()?);
        Ok(Expr::Flwor {
            bindings,
            condition,
            order_by,
            body,
        })
    }

    fn or_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.and_expr()?;
        loop {
            self.ws();
            if self.kw("or") {
                self.ws();
                let rhs = self.and_expr()?;
                lhs = Expr::Logic {
                    is_or: true,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.cmp_expr()?;
        loop {
            self.ws();
            if self.kw("and") {
                self.ws();
                let rhs = self.cmp_expr()?;
                lhs = Expr::Logic {
                    is_or: false,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.path_expr()?;
        self.ws();
        let op = if self.lit("!=") {
            Cmp::Ne
        } else if self.lit("<=") {
            Cmp::Le
        } else if self.lit(">=") {
            Cmp::Ge
        } else if self.peek() == Some(b'=') {
            self.pos += 1;
            Cmp::Eq
        } else if self.peek() == Some(b'<') && self.src.get(self.pos + 1) != Some(&b'/') {
            // '<' followed by a name would be a constructor only in
            // primary position; here it is a comparison.
            self.pos += 1;
            Cmp::Lt
        } else if self.peek() == Some(b'>') {
            self.pos += 1;
            Cmp::Gt
        } else {
            return Ok(lhs);
        };
        self.ws();
        let rhs = self.path_expr()?;
        Ok(Expr::Compare {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn path_expr(&mut self) -> Result<Expr, QueryError> {
        let origin = self.primary()?;
        let mut steps = Vec::new();
        loop {
            if self.lit("//") {
                self.ws();
                steps.push(Step::Descendant(self.node_test()?));
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(b'@') {
                    self.pos += 1;
                    steps.push(Step::Attribute(self.name()?));
                } else {
                    steps.push(Step::Child(self.node_test()?));
                }
            } else if self.peek() == Some(b'[') {
                self.pos += 1;
                self.ws();
                let e = self.expr()?;
                self.ws();
                self.expect("]")?;
                steps.push(Step::Predicate(Box::new(e)));
            } else {
                break;
            }
        }
        if steps.is_empty() {
            Ok(origin)
        } else {
            Ok(Expr::Path {
                origin: Box::new(origin),
                steps,
            })
        }
    }

    fn node_test(&mut self) -> Result<String, QueryError> {
        if self.peek() == Some(b'*') {
            self.pos += 1;
            return Ok("*".to_string());
        }
        self.name()
    }

    fn primary(&mut self) -> Result<Expr, QueryError> {
        self.ws();
        match self.peek() {
            Some(b'$') => {
                self.pos += 1;
                Ok(Expr::Var(self.name()?))
            }
            Some(b'"') | Some(b'\'') => Ok(Expr::Str(self.string_literal()?)),
            Some(b'(') => {
                self.pos += 1;
                self.ws();
                if self.lit(")") {
                    return Ok(Expr::Empty);
                }
                let e = self.expr()?;
                self.ws();
                self.expect(")")?;
                Ok(e)
            }
            Some(b'<') => Ok(Expr::Element(self.constructor()?)),
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.') {
                    self.pos += 1;
                }
                let n: f64 = self.text[start..self.pos]
                    .parse()
                    .map_err(|_| self.err("bad number"))?;
                Ok(Expr::Num(n))
            }
            _ => {
                // Function call or bare (relative) name — we require
                // functions here; relative paths are not supported.
                let save = self.pos;
                let name = self.name()?;
                self.ws();
                if self.peek() == Some(b'(') {
                    self.pos += 1;
                    match name.as_str() {
                        "doc" => {
                            self.ws();
                            let d = self.string_literal()?;
                            self.ws();
                            self.expect(")")?;
                            Ok(Expr::Doc(d))
                        }
                        "count" => {
                            let e = self.expr()?;
                            self.ws();
                            self.expect(")")?;
                            Ok(Expr::Count(Box::new(e)))
                        }
                        "string" => {
                            let e = self.expr()?;
                            self.ws();
                            self.expect(")")?;
                            Ok(Expr::StringFn(Box::new(e)))
                        }
                        "distinct-values" => {
                            let e = self.expr()?;
                            self.ws();
                            self.expect(")")?;
                            Ok(Expr::DistinctValues(Box::new(e)))
                        }
                        "concat" => {
                            let mut args = vec![self.expr()?];
                            loop {
                                self.ws();
                                if self.lit(",") {
                                    args.push(self.expr()?);
                                } else {
                                    break;
                                }
                            }
                            self.expect(")")?;
                            Ok(Expr::Concat(args))
                        }
                        other => {
                            let _ = save;
                            Err(self.err(&format!("unknown function {other}()")))
                        }
                    }
                } else {
                    // A bare name is a relative path step on the context
                    // item (usable inside predicates).
                    Ok(Expr::Path {
                        origin: Box::new(Expr::Var(".".to_string())),
                        steps: vec![Step::Child(name)],
                    })
                }
            }
        }
    }

    /// Direct element constructor: `<name attr="v">content</name>`.
    fn constructor(&mut self) -> Result<Constructor, QueryError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return Ok(Constructor {
                        name,
                        attrs,
                        content: Vec::new(),
                    });
                }
                Some(b) if is_name(b) => {
                    let aname = self.name()?;
                    self.ws();
                    self.expect("=")?;
                    self.ws();
                    let v = self.string_literal()?;
                    attrs.push((aname, v));
                }
                _ => return Err(self.err("expected attribute, '>' or '/>'")),
            }
        }
        // Content until matching close tag.
        let mut content = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated element constructor")),
                Some(b'<') => {
                    if self.text[self.pos..].starts_with("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != name {
                            return Err(self.err(&format!(
                                "mismatched constructor tags <{name}> vs </{close}>"
                            )));
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(Constructor {
                            name,
                            attrs,
                            content,
                        });
                    }
                    content.push(Content::Element(Box::new(self.constructor()?)));
                }
                Some(b'{') => {
                    self.pos += 1;
                    self.ws();
                    let e = self.expr()?;
                    self.ws();
                    self.expect("}")?;
                    content.push(Content::Embed(e));
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'<') | Some(b'{')) {
                        self.pos += 1;
                    }
                    let text = &self.text[start..self.pos];
                    if !text.trim().is_empty() {
                        content.push(Content::Text(text.to_string()));
                    }
                }
            }
        }
    }
}

fn is_name(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dump_query_parses() {
        let e = parse(r#"for $b in doc("xmark.xml")/site return <data>{$b}</data>"#).unwrap();
        match e {
            Expr::Flwor {
                bindings,
                condition,
                body,
                ..
            } => {
                assert_eq!(bindings.len(), 1);
                assert!(condition.is_none());
                assert!(matches!(*body, Expr::Element(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn path_steps() {
        let e = parse(r#"doc("d")/a//b/@id"#).unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(
                    steps,
                    vec![
                        Step::Child("a".into()),
                        Step::Descendant("b".into()),
                        Step::Attribute("id".into()),
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicates_parse() {
        let e = parse(r#"doc("d")/a[b = "x"]"#).unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert!(matches!(steps[1], Step::Predicate(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flwor_with_let_where() {
        let e = parse(r#"for $a in doc("d")//author let $n := $a/name where $n = "Tim" return $n"#)
            .unwrap();
        match e {
            Expr::Flwor {
                bindings,
                condition,
                ..
            } => {
                assert_eq!(bindings.len(), 2);
                assert!(condition.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_constructors() {
        let e = parse(r#"<a x="1"><b>{doc("d")/r}</b>text</a>"#).unwrap();
        match e {
            Expr::Element(c) => {
                assert_eq!(c.name, "a");
                assert_eq!(c.attrs, vec![("x".to_string(), "1".to_string())]);
                assert_eq!(c.content.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparisons_and_logic() {
        assert!(parse(r#"doc("d")/a = "x" and doc("d")/b != "y""#).is_ok());
        assert!(parse(r#"count(doc("d")//x) >= 3 or 1 < 2"#).is_ok());
    }

    #[test]
    fn functions_parse() {
        assert!(parse(r#"count(doc("d")//a)"#).is_ok());
        assert!(parse(r#"string(doc("d")/a)"#).is_ok());
        assert!(parse(r#"distinct-values(doc("d")//a)"#).is_ok());
        assert!(parse(r#"concat("a", "b", string(doc("d")/x))"#).is_ok());
    }

    #[test]
    fn errors_reported() {
        assert!(parse("for $x return 1").is_err());
        assert!(parse(r#"doc("d")/"#).is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse(r#"unknownfn("x")"#).is_err());
        // A bare name parses as a relative path (context-item step).
        let rel = parse("nonsense").unwrap();
        assert!(matches!(rel, Expr::Path { .. }));
    }

    #[test]
    fn multiple_for_bindings() {
        let e = parse(r#"for $a in doc("d")/x, $b in doc("d")/y return $b"#).unwrap();
        match e {
            Expr::Flwor { bindings, .. } => assert_eq!(bindings.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}

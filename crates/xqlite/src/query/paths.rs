//! Shape-path extraction: the label paths a query navigates, resolved
//! through its variable bindings. Feeds guard inference
//! (`xmorph-core::infer`), the paper's §X future-work item.

use crate::query::ast::{Binding, Content, Expr, Step};
use crate::query::{parser, QueryError};
use std::collections::HashMap;

/// Extract every rooted label path a query navigates. Paths start at the
/// document element (the first step after `doc(...)`); descendant steps
/// contribute their label like child steps (the guard will make them
/// direct children); attribute steps contribute `@name`.
pub fn query_shape_paths(text: &str) -> Result<Vec<Vec<String>>, QueryError> {
    let expr = parser::parse(text)?;
    let mut ctx: HashMap<String, Vec<String>> = HashMap::new();
    let mut out: Vec<Vec<String>> = Vec::new();
    walk(&expr, &mut ctx, &mut out);
    out.sort();
    out.dedup();
    out.retain(|p| !p.is_empty());
    Ok(out)
}

/// Resolve an expression to the label path it denotes, if it is a path.
/// Records every fully-resolved path it encounters into `out`.
fn resolve(
    expr: &Expr,
    ctx: &mut HashMap<String, Vec<String>>,
    out: &mut Vec<Vec<String>>,
) -> Option<Vec<String>> {
    match expr {
        Expr::Doc(_) => Some(Vec::new()),
        Expr::Var(v) => ctx.get(v).cloned(),
        Expr::Path { origin, steps } => {
            let mut base = resolve(origin, ctx, out)?;
            for step in steps {
                match step {
                    Step::Child(name) | Step::Descendant(name) => {
                        if name != "*" {
                            base.push(name.clone());
                        }
                    }
                    Step::Attribute(name) => base.push(format!("@{name}")),
                    Step::Predicate(e) => {
                        // Paths inside the predicate hang off the
                        // current base (the context item).
                        let saved = ctx.insert(".".to_string(), base.clone());
                        walk(e, ctx, out);
                        match saved {
                            Some(s) => {
                                ctx.insert(".".to_string(), s);
                            }
                            None => {
                                ctx.remove(".");
                            }
                        }
                    }
                }
            }
            out.push(base.clone());
            Some(base)
        }
        _ => {
            walk(expr, ctx, out);
            None
        }
    }
}

/// Recurse over non-path expression structure.
fn walk(expr: &Expr, ctx: &mut HashMap<String, Vec<String>>, out: &mut Vec<Vec<String>>) {
    match expr {
        Expr::Flwor {
            bindings,
            condition,
            order_by,
            body,
        } => {
            let mut bound: Vec<String> = Vec::new();
            for binding in bindings {
                let (var, e) = match binding {
                    Binding::For(v, e) | Binding::Let(v, e) => (v, e),
                };
                if let Some(path) = resolve(e, ctx, out) {
                    ctx.insert(var.clone(), path);
                    bound.push(var.clone());
                }
            }
            if let Some(cond) = condition {
                walk(cond, ctx, out);
            }
            if let Some((key, _)) = order_by {
                if resolve(key, ctx, out).is_none() { /* walked inside */ }
            }
            walk(body, ctx, out);
            for var in bound {
                ctx.remove(&var);
            }
        }
        Expr::Logic { lhs, rhs, .. } | Expr::Compare { lhs, rhs, .. } => {
            if resolve(lhs, ctx, out).is_none() { /* walked inside */ }
            if resolve(rhs, ctx, out).is_none() { /* walked inside */ }
        }
        Expr::Path { .. } | Expr::Doc(_) | Expr::Var(_) => {
            resolve(expr, ctx, out);
        }
        Expr::Element(c) => {
            for content in &c.content {
                match content {
                    Content::Text(_) => {}
                    Content::Embed(e) => {
                        if resolve(e, ctx, out).is_none() { /* walked */ }
                    }
                    Content::Element(inner) => walk(&Expr::Element((**inner).clone()), ctx, out),
                }
            }
        }
        Expr::Count(e) | Expr::StringFn(e) | Expr::DistinctValues(e) => {
            if resolve(e, ctx, out).is_none() { /* walked */ }
        }
        Expr::Concat(parts) => {
            for part in parts {
                if resolve(part, ctx, out).is_none() { /* walked */ }
            }
        }
        Expr::Str(_) | Expr::Num(_) | Expr::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths(query: &str) -> Vec<String> {
        query_shape_paths(query)
            .unwrap()
            .into_iter()
            .map(|p| p.join("/"))
            .collect()
    }

    #[test]
    fn simple_path() {
        // Only the complete navigated path is recorded; the inference
        // trie reconstructs prefixes.
        assert_eq!(
            paths(r#"doc("d")/data/book/title"#),
            vec!["data/book/title"]
        );
    }

    #[test]
    fn flwor_variables_resolve() {
        let got = paths(r#"for $b in doc("d")/data/book return <t>{string($b/title)}</t>"#);
        assert!(got.contains(&"data/book".to_string()), "{got:?}");
        assert!(got.contains(&"data/book/title".to_string()), "{got:?}");
    }

    #[test]
    fn nested_bindings_and_where() {
        let got = paths(
            r#"for $a in doc("d")//author let $n := $a/name where $n = "X" return $a/book/title"#,
        );
        assert!(got.contains(&"author/name".to_string()), "{got:?}");
        assert!(got.contains(&"author/book/title".to_string()), "{got:?}");
    }

    #[test]
    fn descendant_and_attribute_steps() {
        let got = paths(r#"doc("d")//book/@year"#);
        assert!(got.contains(&"book/@year".to_string()), "{got:?}");
    }

    #[test]
    fn predicate_paths_are_extracted() {
        let got = paths(r#"doc("d")/lib/book[author = "X"]/title"#);
        assert!(got.contains(&"lib/book/author".to_string()), "{got:?}");
        assert!(got.contains(&"lib/book/title".to_string()), "{got:?}");
    }

    #[test]
    fn constructors_walked() {
        let got =
            paths(r#"for $b in doc("d")//book return <e><t>{$b/title}</t><y>{$b/year}</y></e>"#);
        assert!(got.contains(&"book/title".to_string()), "{got:?}");
        assert!(got.contains(&"book/year".to_string()), "{got:?}");
    }

    #[test]
    fn deduplicated_and_sorted() {
        let got = paths(r#"concat(string(doc("d")/a/b), string(doc("d")/a/b))"#);
        assert_eq!(got, vec!["a/b"]);
    }
}

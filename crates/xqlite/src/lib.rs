//! # xmorph-xqlite
//!
//! A small native XML DBMS — the reproduction's stand-in for **eXist
//! 1.4**, the baseline system of the paper's §IX experiments.
//!
//! Like eXist, it stores each XML document *in document order* on disk
//! pages, so the experiment's baseline query
//!
//! ```xquery
//! for $b in doc("xmark.xml")/site return <data>{$b}</data>
//! ```
//!
//! is essentially a sequential page scan — "the timing is essentially
//! that of reading the document from disk to a String object" — which is
//! the *best case* the paper compares XMorph against (Fig. 10).
//!
//! Beyond the dump path, [`query`] implements a usable FLWOR subset of
//! XQuery (`for`/`let`/`where`/`return`, child/descendant path steps,
//! predicates, element constructors with embedded expressions) so the
//! Fig. 14 comparisons exercise a real query engine rather than a string
//! copy.

pub mod db;
pub mod query;

pub use db::XqliteDb;
pub use query::paths::query_shape_paths;
pub use query::QueryError;

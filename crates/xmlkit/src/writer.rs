//! Serialization of [`Document`]s back to XML text.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

/// Output formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStyle {
    /// No whitespace added between elements.
    Compact,
    /// Two-space indentation; elements with only text content stay on one
    /// line.
    Pretty,
}

/// Serialize a whole document.
pub fn serialize(doc: &Document, style: WriteStyle) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root_element() {
        write_node(doc, root, style, 0, &mut out);
        if style == WriteStyle::Pretty {
            out.push('\n');
        }
    }
    out
}

/// Serialize a single node (and its subtree) without added whitespace.
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, WriteStyle::Compact, 0, &mut out);
    out
}

fn has_element_children(doc: &Document, id: NodeId) -> bool {
    doc.all_children(id).iter().any(|&c| doc.is_element(c))
}

fn write_node(doc: &Document, id: NodeId, style: WriteStyle, indent: usize, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Element { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            let children = doc.all_children(id);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let structural = style == WriteStyle::Pretty && has_element_children(doc, id);
            for &c in children {
                if structural {
                    out.push('\n');
                    for _ in 0..(indent + 1) * 2 {
                        out.push(' ');
                    }
                }
                write_node(doc, c, style, indent + 1, out);
            }
            if structural {
                out.push('\n');
                for _ in 0..indent * 2 {
                    out.push(' ');
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// A streaming XML writer for producing large documents without building a
/// DOM. Used by the renderer and the workload generators.
#[derive(Debug)]
pub struct StreamWriter {
    out: String,
    stack: Vec<String>,
    /// True when the current element has had its `>` written.
    open_tag_pending: bool,
}

impl Default for StreamWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamWriter {
    /// Create a writer with an empty buffer.
    pub fn new() -> Self {
        StreamWriter {
            out: String::new(),
            stack: Vec::new(),
            open_tag_pending: false,
        }
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        StreamWriter {
            out: String::with_capacity(cap),
            stack: Vec::new(),
            open_tag_pending: false,
        }
    }

    fn close_pending(&mut self) {
        if self.open_tag_pending {
            self.out.push('>');
            self.open_tag_pending = false;
        }
    }

    /// Open an element.
    pub fn start(&mut self, name: &str) {
        self.close_pending();
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_string());
        self.open_tag_pending = true;
    }

    /// Add an attribute to the element just opened. Panics if called after
    /// content has been written.
    pub fn attr(&mut self, name: &str, value: &str) {
        assert!(self.open_tag_pending, "attr() must follow start()");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Write escaped text content.
    pub fn text(&mut self, t: &str) {
        if t.is_empty() {
            return;
        }
        self.close_pending();
        self.out.push_str(&escape_text(t));
    }

    /// Close the most recently opened element.
    pub fn end(&mut self) {
        let name = self.stack.pop().expect("end() with no open element");
        if self.open_tag_pending {
            self.out.push_str("/>");
            self.open_tag_pending = false;
        } else {
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Drain the text buffered so far, keeping the open-element stack —
    /// lets a caller stream completed fragments while elements remain
    /// open. (Elements whose open tag was drained close with a full
    /// `</name>` even when empty.)
    pub fn drain(&mut self) -> String {
        self.close_pending();
        std::mem::take(&mut self.out)
    }

    /// Finish and return the XML text. Panics if elements are still open.
    pub fn finish(mut self) -> String {
        self.close_pending();
        assert!(
            self.stack.is_empty(),
            "finish() with {} open element(s)",
            self.stack.len()
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let src = r#"<a x="1"><b>hi</b><c/></a>"#;
        let doc = Document::parse_str(src).unwrap();
        assert_eq!(doc.serialize_compact(), src);
    }

    #[test]
    fn escaping_on_output() {
        let mut doc = Document::new();
        let root = doc.create_root("a");
        doc.set_attr(root, "q", "x\"y<z");
        doc.append_text(root, "1 < 2 & 3");
        assert_eq!(
            doc.serialize_compact(),
            r#"<a q="x&quot;y&lt;z">1 &lt; 2 &amp; 3</a>"#
        );
    }

    #[test]
    fn pretty_indents_structure() {
        let doc = Document::parse_str("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(doc.serialize_pretty(), "<a>\n  <b>hi</b>\n  <c/>\n</a>\n");
    }

    #[test]
    fn pretty_keeps_text_elements_inline() {
        let doc = Document::parse_str("<a><b>one two</b></a>").unwrap();
        assert!(doc.serialize_pretty().contains("<b>one two</b>"));
    }

    #[test]
    fn stream_writer_basics() {
        let mut w = StreamWriter::new();
        w.start("data");
        w.start("book");
        w.attr("year", "2012");
        w.start("title");
        w.text("X & Y");
        w.end();
        w.end();
        w.start("empty");
        w.end();
        w.end();
        assert_eq!(
            w.finish(),
            r#"<data><book year="2012"><title>X &amp; Y</title></book><empty/></data>"#
        );
    }

    #[test]
    fn stream_writer_output_reparses() {
        let mut w = StreamWriter::new();
        w.start("r");
        for i in 0..10 {
            w.start("item");
            w.attr("i", &i.to_string());
            w.text(&format!("value {i}"));
            w.end();
        }
        w.end();
        let xml = w.finish();
        let doc = Document::parse_str(&xml).unwrap();
        assert_eq!(doc.children(doc.root_element().unwrap()).count(), 10);
    }

    #[test]
    #[should_panic(expected = "open element")]
    fn stream_writer_unbalanced_panics() {
        let mut w = StreamWriter::new();
        w.start("a");
        let _ = w.finish();
    }
}

//! An arena-backed XML document tree.
//!
//! [`Document`] owns all nodes in two flat arenas (elements/texts) indexed
//! by [`NodeId`]. It supports building documents programmatically (used by
//! the workload generators), parsing from text, navigation, and Dewey
//! numbering of elements (used by the closest-graph machinery in tests and
//! examples).

use crate::dewey::Dewey;
use crate::error::XmlResult;
use crate::reader::{XmlEvent, XmlReader};
use crate::writer::{self, WriteStyle};

/// Index of a node within its [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a name and attributes (in document order).
    Element {
        /// Tag name.
        name: String,
        /// Attribute name/value pairs.
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text(String),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An XML document: a forest arena with a single root element.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Document {
    /// Create an empty document (no root yet).
    pub fn new() -> Self {
        Document::default()
    }

    /// Parse a document from text. Whitespace-only text nodes between
    /// elements are dropped (data-centric XML convention); comments and
    /// processing instructions are skipped.
    pub fn parse_str(input: &str) -> XmlResult<Document> {
        let mut reader = XmlReader::new(input);
        let mut doc = Document::new();
        let mut stack: Vec<NodeId> = Vec::new();
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attrs } => {
                    let id = match stack.last() {
                        Some(&parent) => doc.append_element(parent, &name),
                        None => doc.create_root(&name),
                    };
                    for (k, v) in attrs {
                        doc.set_attr(id, &k, &v);
                    }
                    stack.push(id);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                XmlEvent::Text(t) => {
                    if let Some(&parent) = stack.last() {
                        if !t.trim().is_empty() {
                            doc.append_text(parent, &t);
                        }
                    }
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
                XmlEvent::Eof => break,
            }
        }
        Ok(doc)
    }

    /// The root element, if the document is non-empty.
    pub fn root_element(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes (elements + text nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }

    fn alloc(&mut self, kind: NodeKind, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent,
            children: Vec::new(),
        });
        id
    }

    /// Create the root element. Panics if a root already exists.
    pub fn create_root(&mut self, name: &str) -> NodeId {
        assert!(self.root.is_none(), "document already has a root");
        let id = self.alloc(
            NodeKind::Element {
                name: name.to_string(),
                attrs: Vec::new(),
            },
            None,
        );
        self.root = Some(id);
        id
    }

    /// Append a child element to `parent` and return its id.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let id = self.alloc(
            NodeKind::Element {
                name: name.to_string(),
                attrs: Vec::new(),
            },
            Some(parent),
        );
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Append a text node to `parent` and return its id.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = self.alloc(NodeKind::Text(text.to_string()), Some(parent));
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Set (or replace) an attribute on an element.
    pub fn set_attr(&mut self, element: NodeId, name: &str, value: &str) {
        match &mut self.nodes[element.index()].kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(slot) = attrs.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = value.to_string();
                } else {
                    attrs.push((name.to_string(), value.to_string()));
                }
            }
            NodeKind::Text(_) => panic!("set_attr on a text node"),
        }
    }

    /// The node's payload.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Element name. Panics on text nodes.
    pub fn name(&self, id: NodeId) -> &str {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => name,
            NodeKind::Text(_) => panic!("name() on a text node"),
        }
    }

    /// True if the node is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Element { .. })
    }

    /// Attributes of an element (empty slice for text nodes).
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Look up one attribute value.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The parent node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// All children (elements and text), in document order.
    pub fn all_children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Child *elements*, in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .children
            .iter()
            .copied()
            .filter(|c| self.is_element(*c))
    }

    /// Child elements with the given name.
    pub fn children_named<'a>(
        &'a self,
        id: NodeId,
        name: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id).filter(move |&c| self.name(c) == name)
    }

    /// First child element with the given name.
    pub fn child_named(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.children_named(id, name).next()
    }

    /// Directly contained text (concatenation of immediate text children).
    pub fn direct_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &c in self.all_children(id) {
            if let NodeKind::Text(t) = &self.nodes[c.index()].kind {
                out.push_str(t);
            }
        }
        out
    }

    /// All text in the subtree, in document order (the XPath `string()`
    /// value of the node).
    pub fn deep_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in self.all_children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Preorder (document-order) traversal of all element nodes.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if self.is_element(n) {
                out.push(n);
                // Push children in reverse so they pop in document order.
                for &c in self.nodes[n.index()].children.iter().rev() {
                    if self.is_element(c) {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Depth of a node: the root element is at depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Compute the Dewey number for an element: the root is `1`; the i-th
    /// *element* child (1-based, counting only elements) extends the
    /// parent's number. O(depth × fan-out); use [`Document::dewey_map`]
    /// when numbering many nodes.
    pub fn dewey(&self, id: NodeId) -> Dewey {
        let mut comps: Vec<u32> = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            let ordinal = self
                .children(p)
                .position(|c| c == cur)
                .expect("child not found under its parent") as u32
                + 1;
            comps.push(ordinal);
            cur = p;
        }
        comps.push(1); // the root component
        comps.reverse();
        Dewey::from_components(comps)
    }

    /// Dewey numbers for all element nodes, computed in one preorder pass.
    /// Returns pairs in document order.
    pub fn dewey_map(&self) -> Vec<(NodeId, Dewey)> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack: Vec<(NodeId, Dewey)> = vec![(root, Dewey::root())];
        while let Some((n, num)) = stack.pop() {
            out.push((n, num.clone()));
            let kids: Vec<NodeId> = self.children(n).collect();
            for (i, &c) in kids.iter().enumerate().rev() {
                stack.push((c, num.child(i as u32 + 1)));
            }
        }
        out
    }

    /// Root path of element names from the root down to `id`, e.g.
    /// `["dblp", "article", "author"]`. This is the paper's default
    /// `typeOf` (§IV).
    pub fn root_path(&self, id: NodeId) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            path.push(self.name(n).to_string());
            cur = self.parent(n);
        }
        path.reverse();
        path
    }

    /// Serialize without any added whitespace.
    pub fn serialize_compact(&self) -> String {
        writer::serialize(self, WriteStyle::Compact)
    }

    /// Serialize a single node (and its subtree) compactly.
    pub fn serialize_node(&self, id: NodeId) -> String {
        writer::serialize_node(self, id)
    }

    /// Serialize with two-space indentation.
    pub fn serialize_pretty(&self) -> String {
        writer::serialize(self, WriteStyle::Pretty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(a) instance: books with repeated author info.
    pub(crate) fn fig1a() -> Document {
        Document::parse_str(
            "<data>\
               <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
               <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
             </data>",
        )
        .unwrap()
    }

    #[test]
    fn build_programmatically() {
        let mut doc = Document::new();
        let root = doc.create_root("data");
        let book = doc.append_element(root, "book");
        let title = doc.append_element(book, "title");
        doc.append_text(title, "X");
        doc.set_attr(book, "year", "2012");
        assert_eq!(
            doc.serialize_compact(),
            r#"<data><book year="2012"><title>X</title></book></data>"#
        );
    }

    #[test]
    fn parse_and_navigate() {
        let doc = fig1a();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), "data");
        let books: Vec<_> = doc.children_named(root, "book").collect();
        assert_eq!(books.len(), 2);
        let title = doc.child_named(books[0], "title").unwrap();
        assert_eq!(doc.direct_text(title), "X");
    }

    #[test]
    fn deep_text_concatenates() {
        let doc = Document::parse_str("<a>x<b>y</b>z</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.deep_text(root), "xyz");
        assert_eq!(doc.direct_text(root), "xz");
    }

    #[test]
    fn dewey_numbers_match_paper() {
        // Fig 1(a): book=1.1, title=1.1.1, author=1.1.2, name=1.1.2.1,
        // publisher=1.1.3; second book=1.2 ...
        let doc = fig1a();
        let root = doc.root_element().unwrap();
        let book1 = doc.children(root).next().unwrap();
        assert_eq!(doc.dewey(book1).to_string(), "1.1");
        let author = doc.child_named(book1, "author").unwrap();
        assert_eq!(doc.dewey(author).to_string(), "1.1.2");
        let name = doc.child_named(author, "name").unwrap();
        assert_eq!(doc.dewey(name).to_string(), "1.1.2.1");
        let publisher = doc.child_named(book1, "publisher").unwrap();
        assert_eq!(doc.dewey(publisher).to_string(), "1.1.3");
    }

    #[test]
    fn dewey_map_agrees_with_per_node() {
        let doc = fig1a();
        for (id, num) in doc.dewey_map() {
            assert_eq!(doc.dewey(id), num);
        }
    }

    #[test]
    fn dewey_map_is_document_order() {
        let doc = fig1a();
        let nums: Vec<_> = doc.dewey_map().into_iter().map(|(_, d)| d).collect();
        let mut sorted = nums.clone();
        sorted.sort();
        assert_eq!(nums, sorted);
    }

    #[test]
    fn root_path_types() {
        let doc = fig1a();
        let root = doc.root_element().unwrap();
        let book = doc.children(root).next().unwrap();
        let author = doc.child_named(book, "author").unwrap();
        assert_eq!(doc.root_path(author), vec!["data", "book", "author"]);
    }

    #[test]
    fn descendant_elements_preorder() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let names: Vec<_> = doc
            .descendant_elements(root)
            .into_iter()
            .map(|n| doc.name(n).to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = Document::parse_str("<a>\n  <b>x</b>\n</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.all_children(root).len(), 1);
    }

    #[test]
    fn depth_matches_root_path() {
        let doc = fig1a();
        for (id, _) in doc.dewey_map() {
            assert_eq!(doc.depth(id) + 1, doc.root_path(id).len());
        }
    }

    #[test]
    fn element_count_excludes_text() {
        let doc = Document::parse_str("<a>x<b>y</b></a>").unwrap();
        assert_eq!(doc.element_count(), 2);
        assert_eq!(doc.node_count(), 4);
    }
}

//! # xmorph-xml
//!
//! A from-scratch XML toolkit built as the parsing substrate for the XMorph
//! 2.0 reproduction (ICDE 2012, *Querying XML Data: As You Shape It*).
//!
//! The paper's implementation used the Xerces SAX parser; this crate provides
//! the equivalent building blocks without external dependencies:
//!
//! * [`reader`] — a streaming pull parser producing [`reader::XmlEvent`]s,
//!   the analogue of a SAX event stream. It handles elements, attributes,
//!   text, CDATA, comments, processing instructions, and the five predefined
//!   entities plus numeric character references.
//! * [`dom`] — an arena-backed document tree ([`dom::Document`]) for
//!   in-memory manipulation of small-to-medium documents.
//! * [`dewey`] — prefix-based (Dewey / dynamic level) node numbers with the
//!   least-common-ancestor and tree-distance reasoning the XMorph renderer
//!   relies on (paper §VII).
//! * [`writer`] — serialization back to XML text, compact or indented.
//! * [`escape`] — entity escaping and unescaping.
//!
//! The parser is deliberately a *well-formedness* parser, not a validating
//! one: DTDs are skipped, namespaces are treated as plain prefixed names.
//! That matches what the paper's system needs — XMorph types elements by
//! their root path, not by schema.
//!
//! ## Quick example
//!
//! ```
//! use xmorph_xml::dom::Document;
//!
//! let doc = Document::parse_str("<a><b>hi</b><b>ho</b></a>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.name(root), "a");
//! assert_eq!(doc.children(root).count(), 2);
//! assert_eq!(doc.serialize_compact(), "<a><b>hi</b><b>ho</b></a>");
//! ```

pub mod dewey;
pub mod dom;
pub mod error;
pub mod escape;
pub mod reader;
pub mod writer;

pub use dewey::Dewey;
pub use dom::{Document, NodeId};
pub use error::{XmlError, XmlResult};
pub use reader::{EventSource, XmlEvent, XmlReader, XmlStreamReader};

//! Entity escaping and unescaping for XML text and attribute values.

use std::borrow::Cow;

/// Escape `&`, `<`, and `>` for use in element text content.
///
/// Returns the input unchanged (borrowed) when nothing needs escaping.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escape `&`, `<`, `>`, `"`, and `'` for use in a (double-quoted)
/// attribute value.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\'')));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolve a single entity name (the text between `&` and `;`) to its
/// character, handling the five predefined entities and decimal /
/// hexadecimal character references. Returns `None` for anything else.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Unescape all entity references in `s`. Unknown entities are left
/// verbatim (lenient mode, used by the serializer round-trip tests; the
/// parser itself reports unknown entities as errors).
pub fn unescape_lenient(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        if let Some(end) = rest.find(';') {
            let name = &rest[1..end];
            if let Some(c) = resolve_entity(name) {
                out.push(c);
                rest = &rest[end + 1..];
                continue;
            }
        }
        // Not a recognizable entity: keep the '&' and move on.
        out.push('&');
        rest = &rest[1..];
    }
    out.push_str(rest);
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escaping_escapes_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn attr_escaping_escapes_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn text_escaping_leaves_quotes() {
        assert_eq!(escape_text(r#""q""#), r#""q""#);
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X2603"), Some('☃'));
    }

    #[test]
    fn bad_references_fail() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xD800"), None); // surrogate
        assert_eq!(resolve_entity("#notanumber"), None);
        assert_eq!(resolve_entity(""), None);
    }

    #[test]
    fn unescape_round_trips_escape() {
        let original = "a<b&c>\"d'";
        let escaped = escape_attr(original);
        assert_eq!(unescape_lenient(&escaped), original);
    }

    #[test]
    fn unescape_leaves_unknown_entities() {
        assert_eq!(unescape_lenient("a &bogus; b"), "a &bogus; b");
        assert_eq!(unescape_lenient("tail &"), "tail &");
    }
}

//! A streaming pull parser for XML.
//!
//! [`XmlReader`] is the analogue of the SAX event stream the paper's
//! shredder consumes: the caller repeatedly asks for the next
//! [`XmlEvent`] and the reader advances through the input without
//! building a tree. Well-formedness (tag balance, attribute uniqueness,
//! single root) is enforced.

use crate::error::{ErrorKind, XmlError, XmlResult};
use crate::escape::resolve_entity;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` or the opening half of `<name/>`.
    StartElement {
        /// Element name (namespace prefixes are kept verbatim).
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `</name>` or the closing half of `<name/>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data; CDATA sections are delivered as text. Entity
    /// references are already resolved. May be whitespace-only.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>` (the XML declaration is skipped, not reported).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// Everything between the target and `?>`.
        data: String,
    },
    /// End of the document. Returned exactly once; asking again repeats it.
    Eof,
}

/// Streaming pull parser over a UTF-8 string slice.
pub struct XmlReader<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    stack: Vec<String>,
    seen_root: bool,
    eof: bool,
    /// Pending end-element for a self-closing tag.
    pending_end: Option<String>,
}

impl<'a> XmlReader<'a> {
    /// Create a reader over the given document text.
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            input: input.as_bytes(),
            src: input,
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            seen_root: false,
            eof: false,
            pending_end: None,
        }
    }

    /// Current depth of open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Byte offset of the parse cursor.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, kind: ErrorKind) -> XmlError {
        XmlError::new(kind, self.pos, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Find `needle` at or after the cursor; returns its start offset.
    fn find(&self, needle: &str) -> Option<usize> {
        self.src[self.pos..].find(needle).map(|i| self.pos + i)
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            Some(b) => {
                return Err(self.err(ErrorKind::UnexpectedChar {
                    expected: "name start character",
                    found: b as char,
                }))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof("name"))),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Resolve entities in a raw slice of text or attribute content.
    fn decode_entities(&self, raw: &str) -> XmlResult<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(p) = rest.find('&') {
            out.push_str(&rest[..p]);
            rest = &rest[p..];
            let end = rest.find(';').ok_or_else(|| {
                self.err(ErrorKind::UnknownEntity(
                    rest.chars().take(12).collect::<String>(),
                ))
            })?;
            let name = &rest[1..end];
            match resolve_entity(name) {
                Some(c) => out.push(c),
                None if name.starts_with('#') => {
                    return Err(self.err(ErrorKind::InvalidCharRef(name[1..].to_string())))
                }
                None => return Err(self.err(ErrorKind::UnknownEntity(name.to_string()))),
            }
            rest = &rest[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(XmlEvent::EndElement { name });
        }
        if self.eof {
            return Ok(XmlEvent::Eof);
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(self.err(ErrorKind::UnclosedElements(self.stack.len())));
                }
                if !self.seen_root {
                    return Err(self.err(ErrorKind::NoRootElement));
                }
                self.eof = true;
                return Ok(XmlEvent::Eof);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<?") {
                    match self.read_pi()? {
                        Some(ev) => return Ok(ev),
                        None => continue, // XML declaration, skipped
                    }
                } else if self.starts_with("<!--") {
                    return self.read_comment();
                } else if self.starts_with("<![CDATA[") {
                    return self.read_cdata();
                } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.skip_doctype()?;
                    continue;
                } else if self.starts_with("</") {
                    return self.read_close_tag();
                } else {
                    return self.read_open_tag();
                }
            } else {
                return self.read_text();
            }
        }
    }

    fn read_text(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        while self.peek().is_some() && self.peek() != Some(b'<') {
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        if self.stack.is_empty() {
            // Only whitespace is allowed outside the document element.
            if raw
                .bytes()
                .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
            {
                // Skip and continue pulling.
                return self.next_event();
            }
            return Err(self.err(ErrorKind::TrailingContent));
        }
        let text = self.decode_entities(raw)?;
        Ok(XmlEvent::Text(text))
    }

    fn read_open_tag(&mut self) -> XmlResult<XmlEvent> {
        self.bump(); // '<'
        if self.seen_root && self.stack.is_empty() {
            return Err(self.err(ErrorKind::TrailingContent));
        }
        let name = self.read_name()?;
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    return Ok(XmlEvent::StartElement { name, attrs });
                }
                Some(b'/') => {
                    self.bump();
                    if self.peek() != Some(b'>') {
                        return Err(self.err(ErrorKind::UnexpectedChar {
                            expected: "'>' after '/'",
                            found: self.peek().map(|b| b as char).unwrap_or('\0'),
                        }));
                    }
                    self.bump();
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    self.pending_end = Some(name.clone());
                    return Ok(XmlEvent::StartElement { name, attrs });
                }
                Some(b) if Self::is_name_start(b) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(ErrorKind::UnexpectedChar {
                            expected: "'=' in attribute",
                            found: self.peek().map(|b| b as char).unwrap_or('\0'),
                        }));
                    }
                    self.bump();
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.bump();
                            q
                        }
                        Some(b) => {
                            return Err(self.err(ErrorKind::UnexpectedChar {
                                expected: "quote to open attribute value",
                                found: b as char,
                            }))
                        }
                        None => return Err(self.err(ErrorKind::UnexpectedEof("attribute"))),
                    };
                    let vstart = self.pos;
                    while self.peek().is_some() && self.peek() != Some(quote) {
                        if self.peek() == Some(b'<') {
                            return Err(self.err(ErrorKind::UnexpectedChar {
                                expected: "attribute value character",
                                found: '<',
                            }));
                        }
                        self.bump();
                    }
                    if self.peek().is_none() {
                        return Err(self.err(ErrorKind::UnexpectedEof("attribute value")));
                    }
                    let raw = self.src[vstart..self.pos].to_string();
                    self.bump(); // closing quote
                    let value = self.decode_entities(&raw)?;
                    if attrs.iter().any(|(n, _)| *n == aname) {
                        return Err(self.err(ErrorKind::DuplicateAttribute(aname)));
                    }
                    attrs.push((aname, value));
                }
                Some(b) => {
                    return Err(self.err(ErrorKind::UnexpectedChar {
                        expected: "attribute, '>' or '/>'",
                        found: b as char,
                    }))
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof("tag"))),
            }
        }
    }

    fn read_close_tag(&mut self) -> XmlResult<XmlEvent> {
        self.advance(2); // "</"
        let name = self.read_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err(ErrorKind::UnexpectedChar {
                expected: "'>' in close tag",
                found: self.peek().map(|b| b as char).unwrap_or('\0'),
            }));
        }
        self.bump();
        match self.stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => Err(self.err(ErrorKind::MismatchedTag { open, close: name })),
            None => Err(self.err(ErrorKind::UnbalancedClose(name))),
        }
    }

    fn read_comment(&mut self) -> XmlResult<XmlEvent> {
        self.advance(4); // "<!--"
        let end = self
            .find("-->")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("comment")))?;
        let text = self.src[self.pos..end].to_string();
        while self.pos < end + 3 {
            self.bump();
        }
        Ok(XmlEvent::Comment(text))
    }

    fn read_cdata(&mut self) -> XmlResult<XmlEvent> {
        if self.stack.is_empty() {
            return Err(self.err(ErrorKind::TrailingContent));
        }
        self.advance(9); // "<![CDATA["
        let end = self
            .find("]]>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("CDATA section")))?;
        let text = self.src[self.pos..end].to_string();
        while self.pos < end + 3 {
            self.bump();
        }
        Ok(XmlEvent::Text(text))
    }

    fn read_pi(&mut self) -> XmlResult<Option<XmlEvent>> {
        self.advance(2); // "<?"
        let target = self.read_name()?;
        let end = self
            .find("?>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("processing instruction")))?;
        let data = self.src[self.pos..end].trim().to_string();
        while self.pos < end + 2 {
            self.bump();
        }
        if target.eq_ignore_ascii_case("xml") {
            Ok(None)
        } else {
            Ok(Some(XmlEvent::ProcessingInstruction { target, data }))
        }
    }

    /// Skip a DOCTYPE declaration, including an internal subset.
    fn skip_doctype(&mut self) -> XmlResult<()> {
        self.advance(9); // "<!DOCTYPE"
        let mut depth = 1usize; // counts '<' ... '>' nesting, '[' opens subset
        let mut in_subset = false;
        while depth > 0 {
            match self.bump() {
                Some(b'<') => depth += 1,
                Some(b'>') => depth -= 1,
                Some(b'[') => in_subset = true,
                Some(b']') => in_subset = false,
                Some(_) => {}
                None => return Err(self.err(ErrorKind::UnexpectedEof("DOCTYPE"))),
            }
            // Inside the internal subset, '>' of markup decls shouldn't
            // terminate; the bracket counting above handles the common cases.
            let _ = in_subset;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::new(input);
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            if ev == XmlEvent::Eof {
                break;
            }
            out.push(ev);
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attrs: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn empty_element() {
        assert_eq!(events("<a/>"), vec![start("a"), end("a")]);
        assert_eq!(events("<a></a>"), vec![start("a"), end("a")]);
        assert_eq!(events("<a  />"), vec![start("a"), end("a")]);
    }

    #[test]
    fn nested_elements_and_text() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("hi".into()),
                end("b"),
                end("a")
            ]
        );
    }

    #[test]
    fn attributes_in_order() {
        let evs = events(r#"<a x="1" y='2'/>"#);
        assert_eq!(
            evs[0],
            XmlEvent::StartElement {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into()), ("y".into(), "2".into())],
            }
        );
    }

    #[test]
    fn attribute_entities_decoded() {
        let evs = events(r#"<a t="&lt;&amp;&gt;&quot;&apos;"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attrs, .. } => assert_eq!(attrs[0].1, "<&>\"'"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_entities_decoded() {
        assert_eq!(
            events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2 &#65;&#x42;</a>")[1],
            XmlEvent::Text("1 < 2 && 3 > 2 AB".into())
        );
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            events("<a><![CDATA[x < y & z]]></a>")[1],
            XmlEvent::Text("x < y & z".into())
        );
    }

    #[test]
    fn comments_and_pis_reported() {
        let evs = events("<a><!-- note --><?app do it?></a>");
        assert_eq!(evs[1], XmlEvent::Comment(" note ".into()));
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction {
                target: "app".into(),
                data: "do it".into()
            }
        );
    }

    #[test]
    fn xml_declaration_skipped() {
        let evs = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn doctype_skipped() {
        let evs = events("<!DOCTYPE html><a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
        let evs = events("<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]><a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn mismatched_tags_error() {
        let mut r = XmlReader::new("<a><b></a></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_error() {
        let mut r = XmlReader::new("<a><b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::UnclosedElements(2)));
    }

    #[test]
    fn second_root_error() {
        let mut r = XmlReader::new("<a/><b/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::TrailingContent));
    }

    #[test]
    fn text_outside_root_error() {
        let mut r = XmlReader::new("<a/>junk");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::TrailingContent));
    }

    #[test]
    fn whitespace_outside_root_ok() {
        let evs = events("  <a/>\n  ");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn duplicate_attribute_error() {
        let mut r = XmlReader::new(r#"<a x="1" x="2"/>"#);
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unknown_entity_error() {
        let mut r = XmlReader::new("<a>&nope;</a>");
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn eof_repeats() {
        let mut r = XmlReader::new("<a/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn error_position_is_tracked() {
        let mut r = XmlReader::new("<a>\n  <b></c>\n</a>");
        r.next_event().unwrap();
        r.next_event().unwrap(); // text
        r.next_event().unwrap(); // <b>
        let e = r.next_event().unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        for _ in 0..200 {
            s.push_str("</d>");
        }
        assert_eq!(events(&s).len(), 400);
    }

    #[test]
    fn unicode_names_and_text() {
        let evs = events("<ü>héllo ☃</ü>");
        assert_eq!(evs[0], start("ü"));
        assert_eq!(evs[1], XmlEvent::Text("héllo ☃".into()));
    }
}

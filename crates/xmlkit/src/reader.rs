//! A streaming pull parser for XML.
//!
//! [`XmlReader`] is the analogue of the SAX event stream the paper's
//! shredder consumes: the caller repeatedly asks for the next
//! [`XmlEvent`] and the reader advances through the input without
//! building a tree. Well-formedness (tag balance, attribute uniqueness,
//! single root) is enforced.
//!
//! Two front ends share one parser core:
//!
//! * [`XmlReader`] parses a `&str` already in memory (the historical
//!   API, unchanged).
//! * [`XmlStreamReader`] pulls bytes from any [`std::io::Read`] in
//!   chunks, holding only a bounded window of the document — the
//!   foundation of the out-of-core shred path. Consumed bytes are
//!   dropped from the window as parsing advances, so memory stays
//!   proportional to the largest single token (tag, text run, comment),
//!   not to document size.

use crate::error::{ErrorKind, XmlError, XmlResult};
use crate::escape::resolve_entity;

/// Default refill granularity for [`XmlStreamReader`].
const CHUNK: usize = 64 * 1024;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` or the opening half of `<name/>`.
    StartElement {
        /// Element name (namespace prefixes are kept verbatim).
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `</name>` or the closing half of `<name/>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data; CDATA sections are delivered as text. Entity
    /// references are already resolved. May be whitespace-only.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>` (the XML declaration is skipped, not reported).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// Everything between the target and `?>`.
        data: String,
    },
    /// End of the document. Returned exactly once; asking again repeats it.
    Eof,
}

/// Anything that can pull [`XmlEvent`]s — both reader front ends
/// implement this, so consumers (the shredder, the DOM builder) can be
/// written once against either.
pub trait EventSource {
    /// Pull the next event.
    fn next_event(&mut self) -> XmlResult<XmlEvent>;
    /// Byte offset of the parse cursor within the document.
    fn offset(&self) -> usize;
    /// Current depth of open elements.
    fn depth(&self) -> usize;
}

/// A source of document bytes for the parser core. `read_more` appends
/// at least one byte to `buf` or returns `Ok(0)` for end of input.
trait ByteSource {
    fn read_more(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize>;
}

/// The whole document as one in-memory slice, delivered in a single
/// `read_more` call (one memcpy; no window compaction afterwards).
struct SliceSource<'a> {
    rest: &'a [u8],
}

impl ByteSource for SliceSource<'_> {
    fn read_more(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        let n = self.rest.len();
        buf.extend_from_slice(self.rest);
        self.rest = &[];
        Ok(n)
    }
}

/// Chunked reads from an [`std::io::Read`].
struct IoSource<R> {
    inner: R,
    chunk: usize,
}

impl<R: std::io::Read> ByteSource for IoSource<R> {
    fn read_more(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        let old = buf.len();
        buf.resize(old + self.chunk, 0);
        loop {
            match self.inner.read(&mut buf[old..]) {
                Ok(n) => {
                    buf.truncate(old + n);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    buf.truncate(old);
                    return Err(e);
                }
            }
        }
    }
}

/// The parser core, generic over where bytes come from. Offsets
/// (`pos`, token starts) are absolute document offsets; `buf` holds the
/// byte window `[base, base + buf.len())`.
struct Core<S> {
    src: S,
    buf: Vec<u8>,
    /// Absolute document offset of `buf[0]`.
    base: usize,
    /// Absolute document offset of the parse cursor.
    pos: usize,
    /// The source reported end-of-input (or failed; see `io_error`).
    src_eof: bool,
    /// A read failure, surfaced as [`ErrorKind::Io`] instead of a
    /// misleading well-formedness error at the truncation point.
    io_error: Option<String>,
    line: u32,
    col: u32,
    stack: Vec<String>,
    seen_root: bool,
    eof: bool,
    /// Pending end-element for a self-closing tag.
    pending_end: Option<String>,
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    let first = needle[0];
    let mut i = 0;
    while i + needle.len() <= hay.len() {
        if hay[i] == first && &hay[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

impl<S: ByteSource> Core<S> {
    fn new(src: S) -> Self {
        Core {
            src,
            buf: Vec::new(),
            base: 0,
            pos: 0,
            src_eof: false,
            io_error: None,
            line: 1,
            col: 1,
            stack: Vec::new(),
            seen_root: false,
            eof: false,
            pending_end: None,
        }
    }

    fn depth(&self) -> usize {
        self.stack.len()
    }

    fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, kind: ErrorKind) -> XmlError {
        // A truncated read must not masquerade as a malformed document.
        let kind = match &self.io_error {
            Some(msg) => ErrorKind::Io(msg.clone()),
            None => kind,
        };
        XmlError::new(kind, self.pos, self.line, self.col)
    }

    /// Pull one more chunk from the source; failures latch `io_error`
    /// and end the stream.
    fn fill(&mut self) {
        match self.src.read_more(&mut self.buf) {
            Ok(0) => self.src_eof = true,
            Ok(_) => {}
            Err(e) => {
                self.io_error = Some(e.to_string());
                self.src_eof = true;
            }
        }
    }

    /// Ensure `n` bytes are buffered at the cursor; false at end of input.
    fn have(&mut self, n: usize) -> bool {
        while self.pos - self.base + n > self.buf.len() && !self.src_eof {
            self.fill();
        }
        self.pos - self.base + n <= self.buf.len()
    }

    /// Drop consumed bytes from the window. Only useful while the source
    /// still streams (a fully-buffered slice never needs it), and only
    /// called between events, when no token offsets are outstanding.
    fn compact(&mut self) {
        let consumed = self.pos - self.base;
        if self.src_eof || consumed < CHUNK {
            return;
        }
        self.buf.drain(..consumed);
        self.base = self.pos;
    }

    fn peek(&mut self) -> Option<u8> {
        if self.have(1) {
            Some(self.buf[self.pos - self.base])
        } else {
            None
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&mut self, s: &str) -> bool {
        let sb = s.as_bytes();
        if !self.have(sb.len()) {
            return false;
        }
        let at = self.pos - self.base;
        &self.buf[at..at + sb.len()] == sb
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Find `needle` at or after the cursor, refilling the window as
    /// needed; returns its absolute start offset.
    fn find(&mut self, needle: &str) -> Option<usize> {
        let nb = needle.as_bytes();
        let mut from = self.pos;
        loop {
            let at = from - self.base;
            if at <= self.buf.len() {
                if let Some(i) = find_sub(&self.buf[at..], nb) {
                    return Some(from + i);
                }
            }
            if self.src_eof {
                return None;
            }
            // Restart just far enough back to catch a needle split
            // across the refill boundary.
            from = self
                .pos
                .max((self.base + self.buf.len() + 1).saturating_sub(nb.len()));
            self.fill();
        }
    }

    /// A parsed slice as UTF-8 text. Token boundaries are ASCII
    /// delimiters, so multi-byte characters are never split; validation
    /// matters for the byte-stream front end, where input is not
    /// guaranteed to be UTF-8.
    fn str_range(&self, start: usize, end: usize) -> XmlResult<&str> {
        let s = &self.buf[start - self.base..end - self.base];
        std::str::from_utf8(s)
            .map_err(|_| XmlError::new(ErrorKind::InvalidUtf8, start, self.line, self.col))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            Some(b) => {
                return Err(self.err(ErrorKind::UnexpectedChar {
                    expected: "name start character",
                    found: b as char,
                }))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof("name"))),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(self.str_range(start, self.pos)?.to_string())
    }

    /// Resolve entities in a raw slice of text or attribute content.
    fn decode_entities(&self, raw: &str) -> XmlResult<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(p) = rest.find('&') {
            out.push_str(&rest[..p]);
            rest = &rest[p..];
            let end = rest.find(';').ok_or_else(|| {
                self.err(ErrorKind::UnknownEntity(
                    rest.chars().take(12).collect::<String>(),
                ))
            })?;
            let name = &rest[1..end];
            match resolve_entity(name) {
                Some(c) => out.push(c),
                None if name.starts_with('#') => {
                    return Err(self.err(ErrorKind::InvalidCharRef(name[1..].to_string())))
                }
                None => return Err(self.err(ErrorKind::UnknownEntity(name.to_string()))),
            }
            rest = &rest[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    /// Pull the next event.
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(XmlEvent::EndElement { name });
        }
        if self.eof {
            return Ok(XmlEvent::Eof);
        }
        self.compact();
        loop {
            if !self.have(1) {
                if self.io_error.is_some() {
                    return Err(self.err(ErrorKind::UnexpectedEof("input")));
                }
                if !self.stack.is_empty() {
                    return Err(self.err(ErrorKind::UnclosedElements(self.stack.len())));
                }
                if !self.seen_root {
                    return Err(self.err(ErrorKind::NoRootElement));
                }
                self.eof = true;
                return Ok(XmlEvent::Eof);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<?") {
                    match self.read_pi()? {
                        Some(ev) => return Ok(ev),
                        None => continue, // XML declaration, skipped
                    }
                } else if self.starts_with("<!--") {
                    return self.read_comment();
                } else if self.starts_with("<![CDATA[") {
                    return self.read_cdata();
                } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.skip_doctype()?;
                    continue;
                } else if self.starts_with("</") {
                    return self.read_close_tag();
                } else {
                    return self.read_open_tag();
                }
            } else {
                return self.read_text();
            }
        }
    }

    fn read_text(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        while self.peek().is_some() && self.peek() != Some(b'<') {
            self.bump();
        }
        let raw = self.str_range(start, self.pos)?;
        if self.stack.is_empty() {
            // Only whitespace is allowed outside the document element.
            if raw
                .bytes()
                .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
            {
                // Skip and continue pulling.
                return self.next_event();
            }
            return Err(self.err(ErrorKind::TrailingContent));
        }
        let text = self.decode_entities(raw)?;
        Ok(XmlEvent::Text(text))
    }

    fn read_open_tag(&mut self) -> XmlResult<XmlEvent> {
        self.bump(); // '<'
        if self.seen_root && self.stack.is_empty() {
            return Err(self.err(ErrorKind::TrailingContent));
        }
        let name = self.read_name()?;
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    return Ok(XmlEvent::StartElement { name, attrs });
                }
                Some(b'/') => {
                    self.bump();
                    let found = self.peek();
                    if found != Some(b'>') {
                        return Err(self.err(ErrorKind::UnexpectedChar {
                            expected: "'>' after '/'",
                            found: found.map(|b| b as char).unwrap_or('\0'),
                        }));
                    }
                    self.bump();
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    self.pending_end = Some(name.clone());
                    return Ok(XmlEvent::StartElement { name, attrs });
                }
                Some(b) if Self::is_name_start(b) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    let found = self.peek();
                    if found != Some(b'=') {
                        return Err(self.err(ErrorKind::UnexpectedChar {
                            expected: "'=' in attribute",
                            found: found.map(|b| b as char).unwrap_or('\0'),
                        }));
                    }
                    self.bump();
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.bump();
                            q
                        }
                        Some(b) => {
                            return Err(self.err(ErrorKind::UnexpectedChar {
                                expected: "quote to open attribute value",
                                found: b as char,
                            }))
                        }
                        None => return Err(self.err(ErrorKind::UnexpectedEof("attribute"))),
                    };
                    let vstart = self.pos;
                    while self.peek().is_some() && self.peek() != Some(quote) {
                        if self.peek() == Some(b'<') {
                            return Err(self.err(ErrorKind::UnexpectedChar {
                                expected: "attribute value character",
                                found: '<',
                            }));
                        }
                        self.bump();
                    }
                    if self.peek().is_none() {
                        return Err(self.err(ErrorKind::UnexpectedEof("attribute value")));
                    }
                    let raw = self.str_range(vstart, self.pos)?.to_string();
                    self.bump(); // closing quote
                    let value = self.decode_entities(&raw)?;
                    if attrs.iter().any(|(n, _)| *n == aname) {
                        return Err(self.err(ErrorKind::DuplicateAttribute(aname)));
                    }
                    attrs.push((aname, value));
                }
                Some(b) => {
                    return Err(self.err(ErrorKind::UnexpectedChar {
                        expected: "attribute, '>' or '/>'",
                        found: b as char,
                    }))
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof("tag"))),
            }
        }
    }

    fn read_close_tag(&mut self) -> XmlResult<XmlEvent> {
        self.advance(2); // "</"
        let name = self.read_name()?;
        self.skip_ws();
        let found = self.peek();
        if found != Some(b'>') {
            return Err(self.err(ErrorKind::UnexpectedChar {
                expected: "'>' in close tag",
                found: found.map(|b| b as char).unwrap_or('\0'),
            }));
        }
        self.bump();
        match self.stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => Err(self.err(ErrorKind::MismatchedTag { open, close: name })),
            None => Err(self.err(ErrorKind::UnbalancedClose(name))),
        }
    }

    fn read_comment(&mut self) -> XmlResult<XmlEvent> {
        self.advance(4); // "<!--"
        let end = self
            .find("-->")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("comment")))?;
        let text = self.str_range(self.pos, end)?.to_string();
        while self.pos < end + 3 {
            self.bump();
        }
        Ok(XmlEvent::Comment(text))
    }

    fn read_cdata(&mut self) -> XmlResult<XmlEvent> {
        if self.stack.is_empty() {
            return Err(self.err(ErrorKind::TrailingContent));
        }
        self.advance(9); // "<![CDATA["
        let end = self
            .find("]]>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("CDATA section")))?;
        let text = self.str_range(self.pos, end)?.to_string();
        while self.pos < end + 3 {
            self.bump();
        }
        Ok(XmlEvent::Text(text))
    }

    fn read_pi(&mut self) -> XmlResult<Option<XmlEvent>> {
        self.advance(2); // "<?"
        let target = self.read_name()?;
        let end = self
            .find("?>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("processing instruction")))?;
        let data = self.str_range(self.pos, end)?.trim().to_string();
        while self.pos < end + 2 {
            self.bump();
        }
        if target.eq_ignore_ascii_case("xml") {
            Ok(None)
        } else {
            Ok(Some(XmlEvent::ProcessingInstruction { target, data }))
        }
    }

    /// Skip a DOCTYPE declaration, including an internal subset.
    fn skip_doctype(&mut self) -> XmlResult<()> {
        self.advance(9); // "<!DOCTYPE"
        let mut depth = 1usize; // counts '<' ... '>' nesting, '[' opens subset
        let mut in_subset = false;
        while depth > 0 {
            match self.bump() {
                Some(b'<') => depth += 1,
                Some(b'>') => depth -= 1,
                Some(b'[') => in_subset = true,
                Some(b']') => in_subset = false,
                Some(_) => {}
                None => return Err(self.err(ErrorKind::UnexpectedEof("DOCTYPE"))),
            }
            // Inside the internal subset, '>' of markup decls shouldn't
            // terminate; the bracket counting above handles the common cases.
            let _ = in_subset;
        }
        Ok(())
    }
}

/// Streaming pull parser over a UTF-8 string slice.
pub struct XmlReader<'a> {
    core: Core<SliceSource<'a>>,
}

impl<'a> XmlReader<'a> {
    /// Create a reader over the given document text.
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            core: Core::new(SliceSource {
                rest: input.as_bytes(),
            }),
        }
    }

    /// Current depth of open elements.
    pub fn depth(&self) -> usize {
        self.core.depth()
    }

    /// Byte offset of the parse cursor.
    pub fn offset(&self) -> usize {
        self.core.offset()
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent> {
        self.core.next_event()
    }
}

impl EventSource for XmlReader<'_> {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        self.core.next_event()
    }
    fn offset(&self) -> usize {
        self.core.offset()
    }
    fn depth(&self) -> usize {
        self.core.depth()
    }
}

/// Streaming pull parser over any [`std::io::Read`], buffering only a
/// bounded window of the document. Read failures surface as
/// [`ErrorKind::Io`]; invalid UTF-8 as [`ErrorKind::InvalidUtf8`].
pub struct XmlStreamReader<R> {
    core: Core<IoSource<R>>,
}

impl<R: std::io::Read> XmlStreamReader<R> {
    /// Create a reader pulling 64 KB chunks from `reader`.
    pub fn new(reader: R) -> Self {
        Self::with_chunk_size(reader, CHUNK)
    }

    /// Create a reader with an explicit refill granularity (tests use
    /// tiny chunks to exercise every token-across-boundary case).
    pub fn with_chunk_size(reader: R, chunk: usize) -> Self {
        XmlStreamReader {
            core: Core::new(IoSource {
                inner: reader,
                chunk: chunk.max(1),
            }),
        }
    }

    /// Current depth of open elements.
    pub fn depth(&self) -> usize {
        self.core.depth()
    }

    /// Byte offset of the parse cursor.
    pub fn offset(&self) -> usize {
        self.core.offset()
    }

    /// Bytes currently buffered in the parse window (bounded by the
    /// largest single token plus one refill chunk).
    pub fn window_bytes(&self) -> usize {
        self.core.buf.len()
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent> {
        self.core.next_event()
    }
}

impl<R: std::io::Read> EventSource for XmlStreamReader<R> {
    fn next_event(&mut self) -> XmlResult<XmlEvent> {
        self.core.next_event()
    }
    fn offset(&self) -> usize {
        self.core.offset()
    }
    fn depth(&self) -> usize {
        self.core.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::new(input);
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            if ev == XmlEvent::Eof {
                break;
            }
            out.push(ev);
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attrs: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn empty_element() {
        assert_eq!(events("<a/>"), vec![start("a"), end("a")]);
        assert_eq!(events("<a></a>"), vec![start("a"), end("a")]);
        assert_eq!(events("<a  />"), vec![start("a"), end("a")]);
    }

    #[test]
    fn nested_elements_and_text() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("hi".into()),
                end("b"),
                end("a")
            ]
        );
    }

    #[test]
    fn attributes_in_order() {
        let evs = events(r#"<a x="1" y='2'/>"#);
        assert_eq!(
            evs[0],
            XmlEvent::StartElement {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into()), ("y".into(), "2".into())],
            }
        );
    }

    #[test]
    fn attribute_entities_decoded() {
        let evs = events(r#"<a t="&lt;&amp;&gt;&quot;&apos;"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attrs, .. } => assert_eq!(attrs[0].1, "<&>\"'"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_entities_decoded() {
        assert_eq!(
            events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2 &#65;&#x42;</a>")[1],
            XmlEvent::Text("1 < 2 && 3 > 2 AB".into())
        );
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            events("<a><![CDATA[x < y & z]]></a>")[1],
            XmlEvent::Text("x < y & z".into())
        );
    }

    #[test]
    fn comments_and_pis_reported() {
        let evs = events("<a><!-- note --><?app do it?></a>");
        assert_eq!(evs[1], XmlEvent::Comment(" note ".into()));
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction {
                target: "app".into(),
                data: "do it".into()
            }
        );
    }

    #[test]
    fn xml_declaration_skipped() {
        let evs = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn doctype_skipped() {
        let evs = events("<!DOCTYPE html><a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
        let evs = events("<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]><a/>");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn mismatched_tags_error() {
        let mut r = XmlReader::new("<a><b></a></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_error() {
        let mut r = XmlReader::new("<a><b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::UnclosedElements(2)));
    }

    #[test]
    fn second_root_error() {
        let mut r = XmlReader::new("<a/><b/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::TrailingContent));
    }

    #[test]
    fn text_outside_root_error() {
        let mut r = XmlReader::new("<a/>junk");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::TrailingContent));
    }

    #[test]
    fn whitespace_outside_root_ok() {
        let evs = events("  <a/>\n  ");
        assert_eq!(evs, vec![start("a"), end("a")]);
    }

    #[test]
    fn duplicate_attribute_error() {
        let mut r = XmlReader::new(r#"<a x="1" x="2"/>"#);
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unknown_entity_error() {
        let mut r = XmlReader::new("<a>&nope;</a>");
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn eof_repeats() {
        let mut r = XmlReader::new("<a/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn error_position_is_tracked() {
        let mut r = XmlReader::new("<a>\n  <b></c>\n</a>");
        r.next_event().unwrap();
        r.next_event().unwrap(); // text
        r.next_event().unwrap(); // <b>
        let e = r.next_event().unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        for _ in 0..200 {
            s.push_str("</d>");
        }
        assert_eq!(events(&s).len(), 400);
    }

    #[test]
    fn unicode_names_and_text() {
        let evs = events("<ü>héllo ☃</ü>");
        assert_eq!(evs[0], start("ü"));
        assert_eq!(evs[1], XmlEvent::Text("héllo ☃".into()));
    }

    // ---- XmlStreamReader (chunked io::Read front end) ----

    fn stream_events(input: &str, chunk: usize) -> Vec<XmlEvent> {
        let mut r = XmlStreamReader::with_chunk_size(input.as_bytes(), chunk);
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            if ev == XmlEvent::Eof {
                break;
            }
            out.push(ev);
        }
        out
    }

    #[test]
    fn stream_matches_slice_reader_at_every_chunk_size() {
        let doc = "<?xml version=\"1.0\"?><r a=\"x &amp; y\">t1<b><![CDATA[c < d]]></b>\
                   <!-- note --><?pi data?><e/>héllo ☃</r>";
        let want = events(doc);
        for chunk in [1, 2, 3, 5, 7, 16, 64, 4096] {
            assert_eq!(stream_events(doc, chunk), want, "chunk size {chunk}");
        }
    }

    #[test]
    fn stream_window_stays_bounded() {
        // A document much larger than the chunk size: the parse window
        // must stay near the chunk size, not grow with the document.
        let mut doc = String::from("<r>");
        for i in 0..5000 {
            doc.push_str(&format!("<item id=\"{i}\">some text content {i}</item>"));
        }
        doc.push_str("</r>");
        let mut r = XmlStreamReader::with_chunk_size(doc.as_bytes(), 1024);
        let mut max_window = 0;
        loop {
            if r.next_event().unwrap() == XmlEvent::Eof {
                break;
            }
            max_window = max_window.max(r.window_bytes());
        }
        assert!(
            max_window < 512 * 1024 && max_window < doc.len() / 2,
            "window grew to {max_window} bytes for a {} byte doc",
            doc.len()
        );
    }

    #[test]
    fn stream_io_error_surfaces_as_io_kind() {
        struct Failing {
            served: usize,
        }
        impl std::io::Read for Failing {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.served == 0 {
                    self.served = 1;
                    let src = b"<r><a>text";
                    buf[..src.len()].copy_from_slice(src);
                    Ok(src.len())
                } else {
                    Err(std::io::Error::other("disk on fire"))
                }
            }
        }
        let mut r = XmlStreamReader::new(Failing { served: 0 });
        let err = loop {
            match r.next_event() {
                Ok(XmlEvent::Eof) => panic!("truncated read must not parse cleanly"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&err.kind, ErrorKind::Io(msg) if msg.contains("disk on fire")),
            "{err:?}"
        );
    }

    #[test]
    fn stream_invalid_utf8_rejected() {
        let bytes: &[u8] = b"<r>\xff\xfe</r>";
        let mut r = XmlStreamReader::new(bytes);
        r.next_event().unwrap();
        let e = r.next_event().unwrap_err();
        assert!(matches!(e.kind, ErrorKind::InvalidUtf8), "{e:?}");
    }

    #[test]
    fn stream_token_split_across_refill() {
        // Comment terminator and CDATA terminator split across chunk
        // boundaries exercise the overlapped `find` restart.
        let doc = "<r><!--abc--><![CDATA[xy]]></r>";
        for chunk in 1..=doc.len() {
            assert_eq!(stream_events(doc, chunk), events(doc), "chunk {chunk}");
        }
    }
}

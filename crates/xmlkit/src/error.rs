//! Error type for XML parsing and serialization.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while lexing, parsing, or serializing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: u32,
    /// 1-based column (in bytes) of the error.
    pub column: u32,
}

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot start or continue the current construct.
    UnexpectedChar { expected: &'static str, found: char },
    /// `</b>` closed an element opened as `<a>`.
    MismatchedTag { open: String, close: String },
    /// A close tag with no matching open tag.
    UnbalancedClose(String),
    /// The document ended while elements were still open.
    UnclosedElements(usize),
    /// Text or markup found after the document element closed.
    TrailingContent,
    /// The document has no root element.
    NoRootElement,
    /// An entity reference that is neither predefined nor numeric.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid scalar value.
    InvalidCharRef(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// A name token was empty or started with an invalid character.
    InvalidName(String),
    /// Input was not valid UTF-8.
    InvalidUtf8,
    /// The underlying byte source failed mid-document (streaming reads
    /// only; the message is the I/O error's display form).
    Io(String),
}

impl XmlError {
    pub(crate) fn new(kind: ErrorKind, offset: usize, line: u32, column: u32) -> Self {
        XmlError {
            kind,
            offset,
            line,
            column,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.line, self.column)?;
        match &self.kind {
            ErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            ErrorKind::UnexpectedChar { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            ErrorKind::MismatchedTag { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            ErrorKind::UnbalancedClose(name) => write!(f, "close tag </{name}> has no open tag"),
            ErrorKind::UnclosedElements(n) => write!(f, "{n} element(s) left open at end of input"),
            ErrorKind::TrailingContent => write!(f, "content after the document element"),
            ErrorKind::NoRootElement => write!(f, "document has no root element"),
            ErrorKind::UnknownEntity(e) => write!(f, "unknown entity reference &{e};"),
            ErrorKind::InvalidCharRef(r) => write!(f, "invalid character reference &#{r};"),
            ErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            ErrorKind::InvalidName(n) => write!(f, "invalid XML name {n:?}"),
            ErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
            ErrorKind::Io(msg) => write!(f, "read failed: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(ErrorKind::UnexpectedEof("tag"), 10, 2, 5);
        let s = e.to_string();
        assert!(s.starts_with("2:5:"), "{s}");
        assert!(s.contains("unexpected end of input"), "{s}");
    }

    #[test]
    fn display_mismatched_tag() {
        let e = XmlError::new(
            ErrorKind::MismatchedTag {
                open: "a".into(),
                close: "b".into(),
            },
            0,
            1,
            1,
        );
        assert!(e.to_string().contains("</b>"));
        assert!(e.to_string().contains("<a>"));
    }
}

//! Dewey (prefix-based / dynamic level) node numbers.
//!
//! Each node in an XML tree is identified by the path of 1-based child
//! ordinals from the root, e.g. `1.1.3` — exactly the numbering the paper
//! uses in §VII. Dewey numbers give three things the XMorph renderer needs:
//!
//! 1. **Document order** — lexicographic component order, with a prefix
//!    sorting before its extensions.
//! 2. **Least common ancestor** — the longest common prefix of two numbers.
//! 3. **Tree distance** — `len(a) + len(b) - 2 * lcp(a, b)`, which lets the
//!    closest join test `distance(n, u) == typeDistance` by comparing
//!    prefixes only.

use std::cmp::Ordering;
use std::fmt;

/// A Dewey number: the sequence of 1-based sibling ordinals from the root.
/// The document root element is `[1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey(Vec<u32>);

impl Dewey {
    /// The root element's number, `1`.
    pub fn root() -> Self {
        Dewey(vec![1])
    }

    /// Build from explicit components. Panics if any component is zero
    /// (ordinals are 1-based).
    pub fn from_components(c: Vec<u32>) -> Self {
        assert!(c.iter().all(|&x| x > 0), "Dewey components are 1-based");
        Dewey(c)
    }

    /// The components.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Build from a component slice without re-encoding. Debug-asserts
    /// 1-based ordinals (the columnar store hands in words it already
    /// validated at decode time, so release builds skip the check).
    pub fn from_slice(c: &[u32]) -> Self {
        debug_assert!(c.iter().all(|&x| x > 0), "Dewey components are 1-based");
        Dewey(c.to_vec())
    }

    /// Number of components; the root has length 1. The node's depth
    /// below the root is `len() - 1`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True only for the empty (virtual super-root) number.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The number of this node's `ordinal`-th child (1-based).
    pub fn child(&self, ordinal: u32) -> Self {
        assert!(ordinal > 0);
        let mut c = self.0.clone();
        c.push(ordinal);
        Dewey(c)
    }

    /// The parent's number, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.0.len() <= 1 {
            return None;
        }
        Some(Dewey(self.0[..self.0.len() - 1].to_vec()))
    }

    /// Length of the longest common prefix with `other` — the depth (in
    /// components) of the least common ancestor.
    pub fn lcp_len(&self, other: &Dewey) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The least common ancestor's Dewey number.
    pub fn lca(&self, other: &Dewey) -> Dewey {
        Dewey(self.0[..self.lcp_len(other)].to_vec())
    }

    /// Tree distance: number of edges on the path between the two nodes.
    pub fn distance(&self, other: &Dewey) -> usize {
        let l = self.lcp_len(other);
        (self.0.len() - l) + (other.0.len() - l)
    }

    /// True if `self` is an ancestor of `other` (strictly).
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn is_ancestor_or_self(&self, other: &Dewey) -> bool {
        self.0.len() <= other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The prefix of the first `n` components.
    pub fn prefix(&self, n: usize) -> Dewey {
        Dewey(self.0[..n.min(self.0.len())].to_vec())
    }

    /// Order-preserving byte encoding: concatenated big-endian `u32`
    /// components. Because every component occupies exactly four bytes,
    /// lexicographic byte order equals Dewey document order, so the
    /// encoding can serve directly as a B+tree key.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() * 4);
        for &c in &self.0 {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Inverse of [`Dewey::encode`]. Returns `None` if the byte length is
    /// not a multiple of four or any component is zero.
    pub fn decode(bytes: &[u8]) -> Option<Dewey> {
        let mut c = Vec::with_capacity(bytes.len() / 4);
        if !decode_components_into(bytes, &mut c) {
            return None;
        }
        Some(Dewey(c))
    }
}

/// Decode an encoded Dewey key directly into a component buffer without
/// constructing a [`Dewey`] — the columnar type-sequence cache decodes
/// whole B+tree ranges into flat `u32` arrays this way. Appends to `out`
/// and returns `true` on success; on a malformed key (length not a
/// multiple of four, or a zero component) `out` is left truncated to its
/// original length and `false` is returned.
pub fn decode_components_into(bytes: &[u8], out: &mut Vec<u32>) -> bool {
    if !bytes.len().is_multiple_of(4) {
        return false;
    }
    let start = out.len();
    for chunk in bytes.chunks_exact(4) {
        let v = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if v == 0 {
            out.truncate(start);
            return false;
        }
        out.push(v);
    }
    true
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Document order: component-wise, prefix before extension. This is
    /// exactly preorder (document) order for tree nodes.
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Dewey {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut c = Vec::new();
        for part in s.split('.') {
            c.push(part.parse::<u32>()?);
        }
        Ok(Dewey(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn display_round_trip() {
        for s in ["1", "1.1.3", "1.2.2.1"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn document_order() {
        assert!(d("1") < d("1.1"));
        assert!(d("1.1") < d("1.1.1"));
        assert!(d("1.1.9") < d("1.2"));
        assert!(d("1.2") < d("1.10")); // numeric, not string, comparison
    }

    #[test]
    fn paper_example_distances() {
        // Paper §VII: publisher 1.1.3 vs titles 1.1.1 and 1.2.1.
        assert_eq!(d("1.1.3").distance(&d("1.1.1")), 2);
        assert_eq!(d("1.1.3").distance(&d("1.2.1")), 4);
    }

    #[test]
    fn lca_and_lcp() {
        assert_eq!(d("1.1.3").lca(&d("1.1.1")), d("1.1"));
        assert_eq!(d("1.1.3").lcp_len(&d("1.2.1")), 1);
        assert_eq!(d("1.2").lca(&d("1.2")), d("1.2"));
    }

    #[test]
    fn parent_and_child() {
        assert_eq!(Dewey::root().child(3), d("1.3"));
        assert_eq!(d("1.3").parent(), Some(Dewey::root()));
        assert_eq!(Dewey::root().parent(), None);
    }

    #[test]
    fn ancestry() {
        assert!(d("1.1").is_ancestor_of(&d("1.1.5")));
        assert!(!d("1.1").is_ancestor_of(&d("1.2.5")));
        assert!(!d("1.1").is_ancestor_of(&d("1.1")));
        assert!(d("1.1").is_ancestor_or_self(&d("1.1")));
    }

    #[test]
    fn encode_preserves_order() {
        let all = ["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1", "1.10"];
        let mut deweys: Vec<Dewey> = all.iter().map(|s| d(s)).collect();
        deweys.sort();
        let mut encoded: Vec<Vec<u8>> = deweys.iter().map(|x| x.encode()).collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn from_slice_matches_from_components() {
        let c = [1u32, 3, 2];
        assert_eq!(Dewey::from_slice(&c), Dewey::from_components(c.to_vec()));
    }

    #[test]
    fn decode_components_into_appends_or_rolls_back() {
        let mut out = vec![9u32];
        assert!(decode_components_into(&d("1.2.3").encode(), &mut out));
        assert_eq!(out, vec![9, 1, 2, 3]);
        // Malformed input leaves the buffer as it was.
        assert!(!decode_components_into(&[0, 0, 0], &mut out));
        assert!(!decode_components_into(&[0, 0, 0, 0], &mut out));
        assert_eq!(out, vec![9, 1, 2, 3]);
    }

    #[test]
    fn encode_decode_round_trip() {
        for s in ["1", "1.1.3", "1.2.2.1"] {
            assert_eq!(Dewey::decode(&d(s).encode()), Some(d(s)));
        }
        assert_eq!(Dewey::decode(&[0, 0, 0]), None);
        assert_eq!(Dewey::decode(&[0, 0, 0, 0]), None); // zero component
    }

    #[test]
    fn distance_is_metric_on_samples() {
        let pts = [d("1"), d("1.1"), d("1.1.1"), d("1.2"), d("1.2.3.4")];
        for a in &pts {
            assert_eq!(a.distance(a), 0);
            for b in &pts {
                assert_eq!(a.distance(b), b.distance(a));
                for c in &pts {
                    assert!(a.distance(c) <= a.distance(b) + b.distance(c));
                }
            }
        }
    }
}

//! Property tests: parse ⇄ serialize round-trips and Dewey invariants.

use proptest::prelude::*;
use xmorph_xml::dewey::Dewey;
use xmorph_xml::dom::Document;

/// Strategy for XML names (simple ASCII subset).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

/// Strategy for text content without leading/trailing whitespace-only
/// collapse issues (parse_str drops whitespace-only nodes).
fn text_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>&'\"]{1,20}".prop_filter("non-blank", |s| !s.trim().is_empty())
}

/// A recursive strategy producing random documents.
fn doc_strategy() -> impl Strategy<Value = Document> {
    // Build nested element structure as a tree of (name, children|text).
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String, Option<String>),
        Node(String, Vec<Tree>),
    }
    let leaf = (name_strategy(), proptest::option::of(text_strategy()))
        .prop_map(|(n, t)| Tree::Leaf(n, t));
    let tree = leaf.prop_recursive(4, 24, 5, |inner| {
        (name_strategy(), prop::collection::vec(inner, 1..5))
            .prop_map(|(n, kids)| Tree::Node(n, kids))
    });

    fn build(doc: &mut Document, parent: Option<xmorph_xml::NodeId>, t: &Tree) {
        match t {
            Tree::Leaf(n, text) => {
                let id = match parent {
                    Some(p) => doc.append_element(p, n),
                    None => doc.create_root(n),
                };
                if let Some(tx) = text {
                    doc.append_text(id, tx);
                }
            }
            Tree::Node(n, kids) => {
                let id = match parent {
                    Some(p) => doc.append_element(p, n),
                    None => doc.create_root(n),
                };
                for k in kids {
                    build(doc, Some(id), k);
                }
            }
        }
    }

    tree.prop_map(|t| {
        let mut doc = Document::new();
        build(&mut doc, None, &t);
        doc
    })
}

proptest! {
    #[test]
    fn serialize_parse_round_trip(doc in doc_strategy()) {
        let xml = doc.serialize_compact();
        let reparsed = Document::parse_str(&xml).expect("reparse");
        prop_assert_eq!(reparsed.serialize_compact(), xml);
    }

    #[test]
    fn pretty_and_compact_agree_structurally(doc in doc_strategy()) {
        let pretty = doc.serialize_pretty();
        let reparsed = Document::parse_str(&pretty).expect("reparse pretty");
        prop_assert_eq!(reparsed.element_count(), doc.element_count());
    }

    #[test]
    fn dewey_encode_order_matches(doc in doc_strategy()) {
        let map = doc.dewey_map();
        for w in map.windows(2) {
            let (a, b) = (&w[0].1, &w[1].1);
            prop_assert!(a < b);
            prop_assert!(a.encode() < b.encode());
        }
    }

    #[test]
    fn dewey_distance_symmetry(
        a in prop::collection::vec(1u32..5, 1..6),
        b in prop::collection::vec(1u32..5, 1..6),
    ) {
        let da = Dewey::from_components(a);
        let db = Dewey::from_components(b);
        prop_assert_eq!(da.distance(&db), db.distance(&da));
        prop_assert_eq!(da.distance(&da), 0);
        let lca = da.lca(&db);
        prop_assert!(lca.is_ancestor_or_self(&da) || lca.is_empty());
        prop_assert!(lca.is_ancestor_or_self(&db) || lca.is_empty());
    }
}

//! Umbrella crate for the XMorph 2.0 reproduction.
//!
//! Re-exports the workspace crates under short names so the examples and
//! integration tests can use one dependency. The real code lives in:
//!
//! * [`core`] (`xmorph-core`) — the paper's contribution: the XMorph 2.0
//!   language, query guards, loss analysis, shredder, and renderer.
//! * [`xml`] (`xmorph-xml`) — XML parsing/DOM/Dewey substrate.
//! * [`pagestore`] (`xmorph-pagestore`) — embedded storage engine.
//! * [`xqlite`] (`xmorph-xqlite`) — the eXist-like baseline XML DBMS.
//! * [`datagen`] (`xmorph-datagen`) — synthetic XMark/DBLP/NASA workloads.

pub use xmorph_core as core;
pub use xmorph_datagen as datagen;
pub use xmorph_pagestore as pagestore;
pub use xmorph_xml as xml;
pub use xmorph_xqlite as xqlite;

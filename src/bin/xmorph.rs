//! `xmorph` — the stand-alone XMorph 2.0 command-line tool.
//!
//! The paper's architecture #1 (§VIII): physically transform documents,
//! optionally keeping a shredded store on disk so one shred serves many
//! transformations. Also exposes the analysis, the adorned shape, guard
//! inference, and the bundled XQuery baseline.
//!
//! ```console
//! $ xmorph apply   --guard 'MORPH author [ name book [ title ] ]' --input data.xml
//! $ xmorph analyze --guard 'MUTATE name [ author ]' --input data.xml
//! $ xmorph shape   --input data.xml
//! $ xmorph shred   --store lib.db --input data.xml
//! $ xmorph apply   --guard 'MORPH title' --store lib.db
//! $ xmorph infer   --query 'for $a in doc("d")/result/author return $a/name'
//! $ xmorph query   --input data.xml --query 'doc("doc.xml")//title'
//! $ xmorph serve   --addr 127.0.0.1:7878 --store lib.db --name library
//! ```

use std::io::Read;
use std::path::Path;
use std::process::ExitCode;
use xmorph_core::model::shape::AdornedShape;
use xmorph_core::{Engine, Guard, QueryRequest, ShreddedDoc};
use xmorph_pagestore::Store;
use xmorph_server::{Server, ServerConfig};
use xmorph_xml::dom::Document;
use xmorph_xqlite::XqliteDb;

const USAGE: &str = "\
xmorph — shape-polymorphic XML transformation (XMorph 2.0)

USAGE:
    xmorph <command> [options]

COMMANDS:
    apply     transform a document with a guard (checks typing first)
    analyze   show the target shape, label report, and loss report
    quantify  measure actual loss of a guard on a document
    shape     print a document's adorned shape (with cardinalities)
    shred     shred a document into a store file for reuse
    infer     infer a guard from an XQuery's paths
    query     run an XQuery against a document (baseline engine)
    serve     serve a store over TCP (framed protocol; see DESIGN.md §4h)

OPTIONS:
    --guard <text>        the guard program (apply/analyze/quantify)
    --input <file>        XML document ('-' for stdin)
    --store <file>        shredded store to create (shred) or reuse (apply/serve/…)
    --query <text>        XQuery text (infer/query)
    --no-wrapper          emit the instance stream without a <result> wrapper
    --addr <host:port>    listen address (serve; default 127.0.0.1:7878)
    --name <store-name>   name clients address the store by (serve; default 'default')
    --max-sessions <n>    concurrent connections before BUSY (serve; default 64)
    --max-inflight <n>    concurrent queries before BUSY (serve; default = CPUs)
    --read-only           refuse UPDATE/INSERT/DELETE frames (serve)
";

struct Args {
    command: String,
    guard: Option<String>,
    input: Option<String>,
    store: Option<String>,
    query: Option<String>,
    no_wrapper: bool,
    addr: String,
    name: String,
    max_sessions: Option<usize>,
    max_inflight: Option<usize>,
    read_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        command,
        guard: None,
        input: None,
        store: None,
        query: None,
        no_wrapper: false,
        addr: "127.0.0.1:7878".to_string(),
        name: "default".to_string(),
        max_sessions: None,
        max_inflight: None,
        read_only: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--guard" => args.guard = Some(argv.next().ok_or("--guard needs a value")?),
            "--input" => args.input = Some(argv.next().ok_or("--input needs a value")?),
            "--store" => args.store = Some(argv.next().ok_or("--store needs a value")?),
            "--query" => args.query = Some(argv.next().ok_or("--query needs a value")?),
            "--no-wrapper" => args.no_wrapper = true,
            "--addr" => args.addr = argv.next().ok_or("--addr needs a value")?,
            "--name" => args.name = argv.next().ok_or("--name needs a value")?,
            "--max-sessions" => {
                let v = argv.next().ok_or("--max-sessions needs a value")?;
                args.max_sessions = Some(v.parse().map_err(|_| "--max-sessions needs a number")?);
            }
            "--max-inflight" => {
                let v = argv.next().ok_or("--max-inflight needs a value")?;
                args.max_inflight = Some(v.parse().map_err(|_| "--max-inflight needs a number")?);
            }
            "--read-only" => args.read_only = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// Open the shredded document from `--store` or shred `--input` into an
/// in-memory store. Returns the store so it outlives the doc handle.
fn load_doc(args: &Args) -> Result<(Store, ShreddedDoc), String> {
    match (&args.store, &args.input) {
        (Some(store_path), None) => {
            let store = Store::open(Path::new(store_path)).map_err(|e| e.to_string())?;
            let doc = ShreddedDoc::open(&store).map_err(|e| e.to_string())?;
            Ok((store, doc))
        }
        (None, Some(input)) | (Some(_), Some(input)) => {
            let xml = read_input(input)?;
            let store = Store::in_memory();
            let doc = ShreddedDoc::shred_str(&store, &xml).map_err(|e| e.to_string())?;
            Ok((store, doc))
        }
        (None, None) => Err("need --input <file> or --store <file>".to_string()),
    }
}

fn require_guard(args: &Args) -> Result<Guard, String> {
    let text = args.guard.as_deref().ok_or("need --guard '<program>'")?;
    Guard::parse(text).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "apply" => {
            let guard_text = args.guard.as_deref().ok_or("need --guard '<program>'")?;
            let (store, doc) = load_doc(&args)?;
            let engine = Engine::from_parts(store, doc);
            let mut request = QueryRequest::builder(guard_text);
            if args.no_wrapper {
                request = request.no_wrapper();
            }
            let out = engine.query(&request.build()).map_err(|e| e.to_string())?;
            println!("{}", out.xml);
            eprintln!("typing: {}", out.typing);
            Ok(())
        }
        "analyze" => {
            let guard = require_guard(&args)?;
            let (_store, doc) = load_doc(&args)?;
            let analysis = guard.analyze(&doc).map_err(|e| e.to_string())?;
            println!("target shape:\n{}", analysis.target);
            println!("{}", analysis.labels);
            println!("{}", analysis.loss);
            println!(
                "enforcement: {}",
                if analysis.permitted() {
                    "admitted"
                } else {
                    "REJECTED (add a CAST)"
                }
            );
            println!("effective guard: {}", analysis.target.to_guard());
            Ok(())
        }
        "quantify" => {
            let guard = require_guard(&args)?;
            let (_store, doc) = load_doc(&args)?;
            let q = guard.quantify(&doc).map_err(|e| e.to_string())?;
            println!("{q}");
            Ok(())
        }
        "shape" => {
            let input = args.input.as_deref().ok_or("need --input <file>")?;
            let xml = read_input(input)?;
            let doc = Document::parse_str(&xml).map_err(|e| e.to_string())?;
            let shape = AdornedShape::from_document(&doc);
            println!("{shape}");
            eprintln!(
                "{} distinct types, {} vertices",
                shape.types().len(),
                shape.total_instances()
            );
            Ok(())
        }
        "shred" => {
            let input = args.input.as_deref().ok_or("need --input <file>")?;
            let store_path = args.store.as_deref().ok_or("need --store <file>")?;
            let xml = read_input(input)?;
            let store = Store::create(Path::new(store_path)).map_err(|e| e.to_string())?;
            let doc = ShreddedDoc::shred_str(&store, &xml).map_err(|e| e.to_string())?;
            store.close().map_err(|e| e.to_string())?;
            eprintln!(
                "shredded {} bytes into {store_path}: {} types, {} vertices",
                xml.len(),
                doc.types().len(),
                doc.shape().total_instances()
            );
            Ok(())
        }
        "infer" => {
            let query = args.query.as_deref().ok_or("need --query '<xquery>'")?;
            let paths = xmorph_xqlite::query_shape_paths(query).map_err(|e| e.to_string())?;
            let below_root: Vec<Vec<String>> = paths
                .iter()
                .map(|p| p.iter().skip(1).cloned().collect::<Vec<_>>())
                .filter(|p: &Vec<String>| !p.is_empty())
                .collect();
            let guard = xmorph_core::infer::guard_from_paths(&below_root)
                .ok_or("query navigates no shape below the document element")?;
            println!("{guard}");
            Ok(())
        }
        "query" => {
            let query = args.query.as_deref().ok_or("need --query '<xquery>'")?;
            let input = args.input.as_deref().ok_or("need --input <file>")?;
            let xml = read_input(input)?;
            let db = XqliteDb::in_memory();
            db.store_document("doc.xml", &xml)
                .map_err(|e| e.to_string())?;
            println!("{}", db.query(query).map_err(|e| e.to_string())?);
            Ok(())
        }
        "serve" => {
            let (store, doc) = load_doc(&args)?;
            let engine = Engine::from_parts(store, doc);
            let mut config = ServerConfig::default();
            if let Some(n) = args.max_sessions {
                config.max_sessions = n;
            }
            if let Some(n) = args.max_inflight {
                config.max_inflight = n;
            }
            config.read_only = args.read_only;
            let handle = Server::builder()
                .register(args.name.clone(), engine)
                .config(config)
                .bind(args.addr.as_str())
                .map_err(|e| format!("binding {}: {e}", args.addr))?;
            eprintln!(
                "serving store {:?} on {} (framed protocol v1{}; kill the process to stop)",
                args.name,
                handle.addr(),
                if args.read_only { ", read-only" } else { "" }
            );
            // No signal handling without external crates: serve until
            // the process is killed. The WAL makes an unclosed store
            // crash-consistent; a clean drain needs ServerHandle::shutdown,
            // which embedders get through the library API.
            loop {
                std::thread::park();
            }
        }
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

//! The practical motivation (§I): schemas evolve, guarded queries
//! survive.
//!
//! A bibliography database is denormalized (author info repeated under
//! every book). The administrator normalizes it (author-grouped). Every
//! raw XQuery written against the old shape breaks; the guarded query
//! keeps working, and the guard certifies the transformation is safe on
//! both versions.
//!
//! Run with: `cargo run --example schema_evolution`

use xmorph_repro::core::Guard;
use xmorph_repro::xqlite::XqliteDb;

/// Version 1: denormalized, book-rooted (like the paper's Fig. 1(a)).
const V1: &str = "<data>\
    <book><title>Foundations</title><author><name>Codd</name></author></book>\
    <book><title>Normal Forms</title><author><name>Codd</name></author></book>\
    <book><title>Transactions</title><author><name>Gray</name></author></book>\
    </data>";

/// Version 2: the administrator normalized the schema — author-grouped
/// (like Fig. 1(c)). "Path author/name is repeated under every subtree of
/// element book ... the database administrator may normalize the schema
/// to remove redundancy."
const V2: &str = "<data>\
    <author><name>Codd</name>\
      <book><title>Foundations</title></book>\
      <book><title>Normal Forms</title></book>\
    </author>\
    <author><name>Gray</name>\
      <book><title>Transactions</title></book>\
    </author></data>";

/// A raw query written against V1's shape.
const RAW_QUERY: &str = r#"for $b in doc("lib.xml")/data/book return <t>{string($b/title)}</t>"#;

/// The guarded pair: shape declaration + query against that shape.
const GUARD: &str = "MORPH author [ name book [ title ] ]";
const GUARDED_QUERY: &str = r#"for $a in doc("lib.xml")/result/author
return <byline>{string($a/name)}: {count($a/book)} book(s)</byline>"#;

fn run_raw(xml: &str) -> String {
    let db = XqliteDb::in_memory();
    db.store_document("lib.xml", xml).unwrap();
    db.query(RAW_QUERY).unwrap()
}

fn run_guarded(xml: &str) -> String {
    let guard = Guard::parse(GUARD).unwrap();
    let out = guard.apply_to_str(xml).unwrap();
    let db = XqliteDb::in_memory();
    db.store_document("lib.xml", &out.xml).unwrap();
    db.query(GUARDED_QUERY).unwrap()
}

fn main() {
    println!("--- raw query against V1 (the shape it was written for) ---");
    println!("{}\n", run_raw(V1));

    println!("--- the same raw query against the normalized V2 ---");
    let broken = run_raw(V2);
    println!(
        "{}",
        if broken.is_empty() {
            "(empty — the query silently broke)"
        } else {
            &broken
        }
    );
    println!();

    println!("--- the guarded query against V1 ---");
    println!("{}\n", run_guarded(V1));

    println!("--- the guarded query against V2, unchanged ---");
    println!("{}\n", run_guarded(V2));

    // And the guard can tell us V2 already has the declared shape, so a
    // system could skip the transformation entirely.
    let guard = Guard::parse(GUARD).unwrap();
    let store = xmorph_repro::pagestore::Store::in_memory();
    let doc = xmorph_repro::core::ShreddedDoc::shred_str(&store, V2).unwrap();
    println!(
        "guard.data_already_in_shape(V2) = {}",
        guard.data_already_in_shape(&doc).unwrap()
    );
    println!(
        "\nNote the guarded answers differ only in *grouping*: V1 repeats the author\n\
         per book, so each author element carries one book — exactly the Fig. 2\n\
         caveat ('the grouping is in the source data')."
    );
}

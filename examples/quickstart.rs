//! Quickstart: the paper's §I walkthrough, end to end.
//!
//! One query guard — `MORPH author [ name book [ title ] ]` — applied to
//! the three differently-shaped instances of Figure 1. The guard
//! transforms each to the author-rooted shape (Figure 2) and reports that
//! the transformation is strongly-typed (neither loses nor manufactures
//! data).
//!
//! Run with: `cargo run --example quickstart`

use xmorph_repro::core::Guard;

/// Figure 1(a): book-rooted, author info repeated per book.
const FIG1A: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
    <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
    </data>";

/// Figure 1(b): publisher-rooted.
const FIG1B: &str = "<data>\
    <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
    <publisher><name>V</name><book><title>Y</title><author><name>Tim</name></author></book></publisher>\
    </data>";

/// Figure 1(c): author-rooted (the normalized schema).
const FIG1C: &str = "<data>\
    <author><name>Tim</name>\
      <book><title>X</title><publisher><name>W</name></publisher></book>\
      <book><title>Y</title><publisher><name>V</name></publisher></book>\
    </author></data>";

fn main() {
    let guard = Guard::parse("MORPH author [ name book [ title ] ]").expect("guard parses");
    println!("guard: {}\n", guard.source());

    for (name, xml) in [
        ("Fig 1(a)", FIG1A),
        ("Fig 1(b)", FIG1B),
        ("Fig 1(c)", FIG1C),
    ] {
        let out = guard.apply_to_str(xml).expect("guard applies");
        println!("=== {name} ===");
        println!("typing: {}", out.analysis.loss.typing);
        println!("target shape:\n{}", out.analysis.target);
        println!("output: {}\n", out.xml);
    }

    println!(
        "Instances (a) and (b) transform to the same XML; (c) differs only in\n\
         grouping the two books under one author — exactly the paper's Figure 2."
    );
}

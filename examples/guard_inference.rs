//! Guard inference (paper §X future work): generate the guard *from the
//! query itself*. The query's path expressions already describe the
//! shape it needs; XMorph extracts them, builds the `MORPH`, and the
//! pipeline becomes fully automatic — write the query once, run it on
//! any shape, no guard authoring at all.
//!
//! Run with: `cargo run --example guard_inference`

use xmorph_repro::core::infer::guard_from_paths;
use xmorph_repro::core::Guard;
use xmorph_repro::xqlite::{query_shape_paths, XqliteDb};

const QUERY: &str = r#"for $a in doc("t.xml")/result/author
return <credit>{string($a/name)} wrote {string($a/book/title)}</credit>"#;

const SOURCES: &[(&str, &str)] = &[
    (
        "book-rooted",
        "<data><book><title>X</title><author><name>Tim</name></author></book></data>",
    ),
    (
        "author-rooted",
        "<data><author><name>Tim</name><book><title>X</title></book></author></data>",
    ),
];

fn main() {
    // 1. What shape does the query walk?
    let paths = query_shape_paths(QUERY).expect("query parses");
    println!("query paths:");
    for p in &paths {
        println!("  /{}", p.join("/"));
    }

    // 2. Infer the guard from the paths below the document element
    //    (wrapper + scaffolding trimmed).
    let below_root: Vec<Vec<String>> = paths
        .into_iter()
        .map(|p| p.into_iter().skip(1).collect::<Vec<_>>())
        .filter(|p: &Vec<String>| !p.is_empty())
        .collect();
    let guard_text = guard_from_paths(&below_root).expect("shape paths found");
    println!("\ninferred guard: {guard_text}\n");

    // 3. Run the fully-automatic pipeline on both shapes.
    let guard = Guard::parse(&guard_text).expect("inferred guard parses");
    for (name, xml) in SOURCES {
        let out = guard.apply_to_str(xml).expect("guard admits");
        let db = XqliteDb::in_memory();
        db.store_document("t.xml", &out.xml).unwrap();
        println!("{name:15} -> {}", db.query(QUERY).unwrap());
    }
}

//! Information-loss feedback and the CAST discipline (§I, §V).
//!
//! XMorph reports *precisely which part* of a guard is lossy, and the
//! programmer opts in with a CAST — "just as a C++ programmer might add a
//! cast() ... when permissible".
//!
//! Run with: `cargo run --example loss_report`

use xmorph_repro::core::{Guard, MorphError};

/// Figure 1(c), but with an author who has no name — making `name`
/// optional (cardinality 0..1), the paper's §V-B scenario.
const DATA: &str = "<data>\
    <author><name>Tim</name><book><title>X</title><publisher><name>W</name></publisher></book></author>\
    <author><book><title>Y</title><publisher><name>V</name></publisher></book></author>\
    </data>";

fn main() {
    // 1. A widening guard: flattening titles and publishers under the
    //    author manufactures title↔publisher relationships (Fig. 3).
    println!("--- 1. widening guard, rejected by default ---");
    let widening = Guard::parse("MORPH author [ !title publisher [ name ] ]").unwrap();
    match widening.apply_to_str(DATA) {
        Err(MorphError::Rejected { typing, .. }) => {
            println!("rejected: transformation is {typing}");
        }
        other => println!("unexpected: {other:?}"),
    }
    let analysis = widening.analyze_str(DATA).unwrap();
    println!("{}", analysis.loss);

    println!("--- 2. the same guard, admitted with CAST-WIDENING ---");
    let cast = Guard::parse("CAST-WIDENING MORPH author [ !title publisher [ name ] ]").unwrap();
    let out = cast.apply_to_str(DATA).unwrap();
    println!("output: {}\n", out.xml);

    // 3. A narrowing guard: swapping name above author drops the author
    //    without a name (min path cardinality rises 0 -> 1).
    println!("--- 3. narrowing guard (authors without names are dropped) ---");
    let narrowing = Guard::parse("CAST-NARROWING MUTATE author.name [ author ]").unwrap();
    let out = narrowing.apply_to_str(DATA).unwrap();
    println!("{}", out.analysis.loss);
    println!("output: {}\n", out.xml);

    // 4. Label-to-type report: how an ambiguous label resolved.
    println!("--- 4. label-to-type report for an ambiguous label ---");
    let ambiguous = Guard::parse("MORPH author [ name ]").unwrap();
    let analysis = ambiguous.analyze_str(DATA).unwrap();
    println!("{}", analysis.labels);

    // 5. TYPE-FILL: a label missing from the source becomes a NEW type
    //    instead of a type mismatch.
    println!("--- 5. TYPE-FILL for a missing label ---");
    let missing = Guard::parse("MUTATE editor [ title ]").unwrap();
    match missing.apply_to_str(DATA) {
        Err(MorphError::TypeMismatch { label }) => {
            println!("without TYPE-FILL: mismatch on {label:?}")
        }
        other => println!("unexpected: {other:?}"),
    }
    let filled = Guard::parse("CAST TYPE-FILL MUTATE editor [ title ]").unwrap();
    let out = filled.apply_to_str(DATA).unwrap();
    println!("with TYPE-FILL: {}", out.xml);
}

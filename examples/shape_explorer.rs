//! Explore the data model (§IV): adorned shapes, closest graphs, and
//! exact type distances of a generated XMark-style document.
//!
//! Run with: `cargo run --example shape_explorer`

use xmorph_repro::core::model::closest;
use xmorph_repro::core::ShreddedDoc;
use xmorph_repro::datagen::XmarkConfig;
use xmorph_repro::pagestore::Store;
use xmorph_repro::xml::dom::Document;

fn main() {
    // A small auction document.
    let xml = XmarkConfig {
        factor: 0.001,
        ..Default::default()
    }
    .generate();
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, &xml).expect("shred");

    println!(
        "document: {} bytes, {} distinct root-path types, {} vertices\n",
        xml.len(),
        doc.types().len(),
        doc.shape().total_instances()
    );

    // The adorned shape, pretty-printed with cardinalities (Fig. 5 style)
    // — trimmed to the first 40 lines here.
    let shape = doc.shape().to_string();
    println!("adorned shape (first lines):");
    for line in shape.lines().take(40) {
        println!("  {line}");
    }
    println!("  ...\n");

    // Exact type distances, resolved against the data (Def. 2).
    let types = doc.types();
    let person = types.matching("person")[0];
    let name = types
        .matching("name")
        .into_iter()
        .find(|&t| types.dotted(t).contains("person"))
        .expect("person name type");
    let interest = types.matching("interest")[0];
    println!(
        "typeDistance(person, person.name) = {:?}",
        doc.type_distance_exact(person, name)
    );
    println!(
        "typeDistance(person, profile.interest) = {:?}",
        doc.type_distance_exact(person, interest)
    );

    // The materialized closest graph of a small fragment (Def. 1). The
    // renderer never materializes this — O(n²) — but it is the formal
    // object the information-loss guarantees speak about.
    let fragment = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";
    let frag_doc = Document::parse_str(fragment).unwrap();
    let graph = closest::closest_graph(&frag_doc);
    println!(
        "\nclosest graph of the Fig. 1(a) fragment: {} vertices, {} closest edges",
        graph.vertices.len(),
        graph.edge_count()
    );
    println!("sample edges (paper §VII: publisher 1.1.3 is closest to title 1.1.1, not 1.2.1):");
    for (a, b) in graph.edges.iter().take(8) {
        println!("  {a} -- {b}");
    }
}

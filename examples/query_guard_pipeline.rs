//! The headline scenario: a *query guard protecting an XQuery query*.
//!
//! The query `for $a in doc(..)/result/author return <entry>...` expects
//! author-rooted data. The guard declares that shape; together they run
//! unchanged against any source shape:
//!
//! 1. the guard checks the transformation is safe (strongly-typed),
//! 2. transforms the source into the declared shape,
//! 3. the query runs over the transformed data (here via the bundled
//!    `xqlite` engine).
//!
//! Run with: `cargo run --example query_guard_pipeline`

use xmorph_repro::core::Guard;
use xmorph_repro::xqlite::XqliteDb;

/// Three sources with the same book data in different shapes.
const SOURCES: &[(&str, &str)] = &[
    (
        "book-rooted",
        "<data>\
         <book><title>X</title><author><name>Tim</name></author></book>\
         <book><title>Y</title><author><name>Ann</name></author></book>\
         </data>",
    ),
    (
        "publisher-rooted",
        "<data>\
         <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
         <publisher><name>V</name><book><title>Y</title><author><name>Ann</name></author></book></publisher>\
         </data>",
    ),
    (
        "author-rooted",
        "<data>\
         <author><name>Tim</name><book><title>X</title></book></author>\
         <author><name>Ann</name><book><title>Y</title></book></author>\
         </data>",
    ),
];

/// The query, written once against the guarded shape.
const QUERY: &str = r#"for $a in doc("guarded.xml")/result/author
return <entry><who>{string($a/name)}</who><wrote>{string($a/book/title)}</wrote></entry>"#;

fn main() {
    let guard = Guard::parse("MORPH author [ name book [ title ] ]").expect("guard parses");

    for (shape_name, xml) in SOURCES {
        println!("=== source shape: {shape_name} ===");
        // 1 + 2: check and transform.
        let out = guard.apply_to_str(xml).expect("guard admits the data");
        println!("guard verdict: {}", out.analysis.loss.typing);
        // 3: query the transformed data.
        let db = XqliteDb::in_memory();
        db.store_document("guarded.xml", &out.xml).expect("store");
        let answer = db.query(QUERY).expect("query evaluates");
        println!("query answer: {answer}\n");
    }

    println!(
        "The same guard + query pair produced the same answers from all three\n\
         shapes — the query never needed to know how the data was arranged."
    );
}
